//! CEP queries (§2.2 of the paper): operator trees, predicates, and time
//! windows, plus the derived structural information (precedence relations,
//! negation contexts) the rest of the system relies on.

pub mod operator;
pub mod parser;
pub mod predicate;

pub use operator::{OpKind, OpNode, Pattern};
pub use predicate::{CmpOp, Predicate, PredicateExpr};

use crate::catalog::Catalog;
use crate::error::{ModelError, Result};
use crate::event::Timestamp;
use crate::types::{EventTypeId, PrimId, PrimSet, QueryId, TypeSet, MAX_PRIMS};
use serde::{Deserialize, Serialize};

/// The temporal relation between two primitive operators, derived from the
/// operator tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderRel {
    /// The first primitive must occur before the second in the trace.
    Before,
    /// The first primitive must occur after the second.
    After,
    /// No order constraint (their least common ancestor is an `AND`).
    Unordered,
}

/// The negation context of one `NSEQ` operator: the primitive operators of
/// its first, (negated) second, and third child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NSeqContext {
    /// Primitives of the first child (the prefix pattern).
    pub first: PrimSet,
    /// Primitives of the negated middle child.
    pub negated: PrimSet,
    /// Primitives of the third child (the suffix pattern).
    pub last: PrimSet,
}

/// A valid CEP query `q = (O, λ, P)` with a time window `τ_q`.
///
/// Queries are constructed from a [`Pattern`] via [`Query::build`], which
/// assigns [`PrimId`]s to leaves in left-to-right order and validates the
/// structure (tree with a single root, composite arity ≥ 2, no two directly
/// nested operators of the same type, `NSEQ` with exactly three children).
///
/// Workload queries must be free of `OR` operators; use
/// [`Pattern::split_disjunctions`] first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    id: QueryId,
    root: OpNode,
    prim_types: Vec<EventTypeId>,
    predicates: Vec<Predicate>,
    window: Timestamp,
    /// Pairwise order constraints, row-major `prims × prims`.
    order: Vec<OrderRel>,
    /// Primitives below the negated child of some `NSEQ`.
    negated: PrimSet,
    /// One context per `NSEQ` operator, in pre-order.
    nseq_contexts: Vec<NSeqContext>,
}

impl Query {
    /// Builds and validates a query from a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuery`] if the pattern violates the
    /// structural rules of §2.2, contains an `OR` (split disjunctions
    /// first), or has more than [`MAX_PRIMS`] leaves.
    pub fn build(
        id: QueryId,
        pattern: &Pattern,
        predicates: Vec<Predicate>,
        window: Timestamp,
    ) -> Result<Self> {
        if pattern.contains_or() {
            return Err(ModelError::InvalidQuery {
                query: Some(id),
                reason: "workload queries must be OR-free; call split_disjunctions first"
                    .to_string(),
            });
        }
        let n = pattern.num_leaves();
        if n == 0 {
            return Err(ModelError::InvalidQuery {
                query: Some(id),
                reason: "query has no primitive operator".to_string(),
            });
        }
        if n > MAX_PRIMS {
            return Err(ModelError::CapacityExceeded {
                what: "primitive operators per query",
                max: MAX_PRIMS,
            });
        }

        let mut prim_types = Vec::with_capacity(n);
        let root = Self::resolve(pattern, &mut prim_types, id)?;
        Self::validate_nesting(&root, id)?;

        for p in &predicates {
            if !(p.selectivity > 0.0 && p.selectivity <= 1.0) {
                return Err(ModelError::InvalidQuery {
                    query: Some(id),
                    reason: format!("predicate selectivity {} outside (0, 1]", p.selectivity),
                });
            }
            for prim in p.prims().iter() {
                if prim.index() >= n {
                    return Err(ModelError::UnknownPrim(prim));
                }
            }
        }

        let mut order = vec![OrderRel::Unordered; n * n];
        let mut nseq_contexts = Vec::new();
        Self::derive_order(&root, &mut order, n, &mut nseq_contexts);
        let negated = nseq_contexts
            .iter()
            .fold(PrimSet::empty(), |acc, c| acc.union(c.negated));

        Ok(Self {
            id,
            root,
            prim_types,
            predicates,
            window,
            order,
            negated,
            nseq_contexts,
        })
    }

    /// Resolves a pattern into an [`OpNode`] tree, assigning prim ids.
    fn resolve(
        pattern: &Pattern,
        prim_types: &mut Vec<EventTypeId>,
        id: QueryId,
    ) -> Result<OpNode> {
        match pattern {
            Pattern::Leaf(ty) => {
                let prim = PrimId(prim_types.len() as u8);
                prim_types.push(*ty);
                Ok(OpNode::Primitive(prim))
            }
            Pattern::Seq(children) | Pattern::And(children) => {
                let kind = if matches!(pattern, Pattern::Seq(_)) {
                    OpKind::Seq
                } else {
                    OpKind::And
                };
                if children.len() < 2 {
                    return Err(ModelError::InvalidQuery {
                        query: Some(id),
                        reason: format!("{} operator needs at least 2 children", kind.name()),
                    });
                }
                let children = children
                    .iter()
                    .map(|c| Self::resolve(c, prim_types, id))
                    .collect::<Result<Vec<_>>>()?;
                Ok(OpNode::Composite { kind, children })
            }
            Pattern::Or(_) => unreachable!("contains_or checked by caller"),
            Pattern::NSeq(first, negated, last) => {
                let children = vec![
                    Self::resolve(first, prim_types, id)?,
                    Self::resolve(negated, prim_types, id)?,
                    Self::resolve(last, prim_types, id)?,
                ];
                Ok(OpNode::Composite {
                    kind: OpKind::NSeq,
                    children,
                })
            }
        }
    }

    /// Checks that no two directly nested composite operators have the same
    /// type (validity condition of §2.2).
    fn validate_nesting(node: &OpNode, id: QueryId) -> Result<()> {
        if let OpNode::Composite { kind, children } = node {
            for c in children {
                if let OpNode::Composite { kind: ck, .. } = c {
                    if ck == kind {
                        return Err(ModelError::InvalidQuery {
                            query: Some(id),
                            reason: format!(
                                "two directly nested {} operators; flatten them",
                                kind.name()
                            ),
                        });
                    }
                }
                Self::validate_nesting(c, id)?;
            }
        }
        Ok(())
    }

    /// Derives the pairwise order relation and the `NSEQ` contexts.
    fn derive_order(
        node: &OpNode,
        order: &mut [OrderRel],
        n: usize,
        nseq_contexts: &mut Vec<NSeqContext>,
    ) {
        if let OpNode::Composite { kind, children } = node {
            match kind {
                OpKind::Seq => {
                    // Every prim of child i precedes every prim of child j>i.
                    for i in 0..children.len() {
                        for j in (i + 1)..children.len() {
                            for a in children[i].prims().iter() {
                                for b in children[j].prims().iter() {
                                    order[a.index() * n + b.index()] = OrderRel::Before;
                                    order[b.index() * n + a.index()] = OrderRel::After;
                                }
                            }
                        }
                    }
                }
                OpKind::NSeq => {
                    // First precedes last; the negated child imposes no
                    // pairwise constraint on positive matches (its absence is
                    // checked over an interval instead).
                    let first = children[0].prims();
                    let last = children[2].prims();
                    for a in first.iter() {
                        for b in last.iter() {
                            order[a.index() * n + b.index()] = OrderRel::Before;
                            order[b.index() * n + a.index()] = OrderRel::After;
                        }
                    }
                    nseq_contexts.push(NSeqContext {
                        first,
                        negated: children[1].prims(),
                        last,
                    });
                }
                OpKind::And | OpKind::Or => {}
            }
            for c in children {
                Self::derive_order(c, order, n, nseq_contexts);
            }
        }
    }

    /// The query's id within its workload.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The root operator (`root(q)`).
    pub fn root(&self) -> &OpNode {
        &self.root
    }

    /// Number of primitive operators (`|O_p|`).
    pub fn num_prims(&self) -> usize {
        self.prim_types.len()
    }

    /// The set of all primitive operators.
    pub fn prims(&self) -> PrimSet {
        PrimSet::full(self.num_prims())
    }

    /// The set of *positive* (non-negated) primitive operators. Matches of
    /// the query contain exactly one event per positive primitive operator.
    pub fn positive_prims(&self) -> PrimSet {
        self.prims().difference(self.negated)
    }

    /// The primitives below a negated `NSEQ` child.
    pub fn negated_prims(&self) -> PrimSet {
        self.negated
    }

    /// The event type of a primitive operator (`o.sem`).
    pub fn prim_type(&self, prim: PrimId) -> EventTypeId {
        self.prim_types[prim.index()]
    }

    /// The prim-id → event-type table, in prim order.
    pub fn prim_types(&self) -> &[EventTypeId] {
        &self.prim_types
    }

    /// All event types referenced by the given primitive operators.
    pub fn types_of(&self, prims: PrimSet) -> TypeSet {
        prims.iter().map(|p| self.prim_type(p)).collect()
    }

    /// All event types referenced by the query.
    pub fn types(&self) -> TypeSet {
        self.types_of(self.prims())
    }

    /// The primitive operators referencing the given event types. Inverse of
    /// [`Query::types_of`]; used to translate the paper's type-induced
    /// projections `π(q, E')` into prim sets.
    pub fn prims_of_types(&self, types: TypeSet) -> PrimSet {
        (0..self.num_prims())
            .map(|i| PrimId(i as u8))
            .filter(|p| types.contains(self.prim_type(*p)))
            .collect()
    }

    /// Returns `true` if no two primitive operators share an event type.
    /// aMuSE (§6) requires this property.
    pub fn has_distinct_prim_types(&self) -> bool {
        let mut seen = TypeSet::empty();
        for ty in &self.prim_types {
            if seen.contains(*ty) {
                return false;
            }
            seen.insert(*ty);
        }
        true
    }

    /// The query's predicates (`P`).
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The time window `τ_q`.
    pub fn window(&self) -> Timestamp {
        self.window
    }

    /// The temporal relation between two primitive operators.
    pub fn order_rel(&self, a: PrimId, b: PrimId) -> OrderRel {
        self.order[a.index() * self.num_prims() + b.index()]
    }

    /// The `NSEQ` contexts of the query, in pre-order.
    pub fn nseq_contexts(&self) -> &[NSeqContext] {
        &self.nseq_contexts
    }

    /// The query's selectivity `σ(q) = Π_{a ∈ P} σ(a)`.
    pub fn selectivity(&self) -> f64 {
        self.predicates.iter().map(|p| p.selectivity).product()
    }

    /// The product of selectivities of predicates defined entirely over the
    /// given primitive operators — the selectivity of the projection induced
    /// by them (§4.2: "σ(p) corresponds to the product of the selectivities
    /// of the shared predicates").
    pub fn selectivity_within(&self, prims: PrimSet) -> f64 {
        self.predicates
            .iter()
            .filter(|p| p.prims().is_subset(prims))
            .map(|p| p.selectivity)
            .product()
    }

    /// Indices (into [`Query::predicates`]) of predicates defined entirely
    /// over the given primitive operators.
    pub fn predicates_within(&self, prims: PrimSet) -> Vec<usize> {
        self.predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| p.prims().is_subset(prims))
            .map(|(i, _)| i)
            .collect()
    }

    /// Overrides the selectivity of one predicate — used by planners that
    /// re-estimate statistics (e.g. from observed traces) after parsing.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the selectivity is outside
    /// `(0, 1]`.
    pub fn set_predicate_selectivity(&mut self, index: usize, selectivity: f64) {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity {selectivity} outside (0, 1]"
        );
        self.predicates[index].selectivity = selectivity;
    }

    /// Renders the query with type names (e.g. `SEQ(AND(C, L), F)`).
    pub fn render(&self, catalog: &Catalog) -> String {
        self.root.render(&self.prim_types, catalog)
    }

    /// Canonical structural signature in terms of event types, for
    /// cross-query structural comparison.
    pub fn signature(&self) -> String {
        self.root.signature(&self.prim_types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AttrId;

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }

    /// The paper's running example: `SEQ(AND(C, L), F)` with C=0, L=1, F=2.
    pub(crate) fn example_query() -> Query {
        let p = Pattern::seq([
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]);
        Query::build(QueryId(0), &p, vec![], 1000).unwrap()
    }

    #[test]
    fn builds_and_assigns_prims_in_leaf_order() {
        let q = example_query();
        assert_eq!(q.num_prims(), 3);
        assert_eq!(q.prim_type(PrimId(0)), t(0)); // C
        assert_eq!(q.prim_type(PrimId(1)), t(1)); // L
        assert_eq!(q.prim_type(PrimId(2)), t(2)); // F
        assert!(q.has_distinct_prim_types());
        assert_eq!(q.window(), 1000);
    }

    #[test]
    fn order_relations() {
        let q = example_query();
        // C and L are under AND: unordered.
        assert_eq!(q.order_rel(PrimId(0), PrimId(1)), OrderRel::Unordered);
        // C before F, L before F (SEQ).
        assert_eq!(q.order_rel(PrimId(0), PrimId(2)), OrderRel::Before);
        assert_eq!(q.order_rel(PrimId(2), PrimId(1)), OrderRel::After);
    }

    #[test]
    fn rejects_or() {
        let p = Pattern::or([Pattern::leaf(t(0)), Pattern::leaf(t(1))]);
        assert!(matches!(
            Query::build(QueryId(0), &p, vec![], 10),
            Err(ModelError::InvalidQuery { .. })
        ));
    }

    #[test]
    fn rejects_single_child_composite() {
        let p = Pattern::Seq(vec![Pattern::leaf(t(0))]);
        assert!(Query::build(QueryId(0), &p, vec![], 10).is_err());
    }

    #[test]
    fn rejects_directly_nested_same_kind() {
        let p = Pattern::seq([
            Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]);
        let err = Query::build(QueryId(0), &p, vec![], 10).unwrap_err();
        assert!(matches!(err, ModelError::InvalidQuery { .. }));
    }

    #[test]
    fn rejects_bad_selectivity() {
        let p = Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]);
        let pred = Predicate::unary(PrimId(0), AttrId(0), CmpOp::Eq, 1i64.into(), 0.0);
        assert!(Query::build(QueryId(0), &p, vec![pred], 10).is_err());
        let pred = Predicate::unary(PrimId(0), AttrId(0), CmpOp::Eq, 1i64.into(), 1.5);
        assert!(Query::build(QueryId(0), &p, vec![pred], 10).is_err());
    }

    #[test]
    fn rejects_predicate_on_unknown_prim() {
        let p = Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]);
        let pred = Predicate::unary(PrimId(7), AttrId(0), CmpOp::Eq, 1i64.into(), 0.5);
        assert_eq!(
            Query::build(QueryId(0), &p, vec![pred], 10),
            Err(ModelError::UnknownPrim(PrimId(7)))
        );
    }

    #[test]
    fn nseq_contexts_and_negated_prims() {
        // NSEQ(A, B, C): B is negated.
        let p = Pattern::nseq(
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::leaf(t(2)),
        );
        let q = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        assert_eq!(q.nseq_contexts().len(), 1);
        let ctx = q.nseq_contexts()[0];
        assert_eq!(ctx.first, PrimSet::single(PrimId(0)));
        assert_eq!(ctx.negated, PrimSet::single(PrimId(1)));
        assert_eq!(ctx.last, PrimSet::single(PrimId(2)));
        assert_eq!(q.negated_prims(), PrimSet::single(PrimId(1)));
        assert_eq!(q.positive_prims().len(), 2);
        // First precedes last; negated unordered.
        assert_eq!(q.order_rel(PrimId(0), PrimId(2)), OrderRel::Before);
        assert_eq!(q.order_rel(PrimId(0), PrimId(1)), OrderRel::Unordered);
    }

    #[test]
    fn selectivities() {
        let a = AttrId(0);
        let p = Pattern::seq([
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::leaf(t(2)),
        ]);
        let preds = vec![
            Predicate::binary((PrimId(0), a), CmpOp::Eq, (PrimId(1), a), 0.1),
            Predicate::binary((PrimId(1), a), CmpOp::Eq, (PrimId(2), a), 0.5),
        ];
        let q = Query::build(QueryId(0), &p, preds, 10).unwrap();
        assert!((q.selectivity() - 0.05).abs() < 1e-12);
        // Projection on {P0, P1} keeps only the first predicate.
        let s: PrimSet = [PrimId(0), PrimId(1)].into_iter().collect();
        assert!((q.selectivity_within(s) - 0.1).abs() < 1e-12);
        assert_eq!(q.predicates_within(s), vec![0]);
        // Projection on {P0, P2} keeps nothing.
        let s2: PrimSet = [PrimId(0), PrimId(2)].into_iter().collect();
        assert!((q.selectivity_within(s2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn types_and_prims_roundtrip() {
        let q = example_query();
        let all = q.types();
        assert_eq!(all.len(), 3);
        assert_eq!(q.prims_of_types(all), q.prims());
        let ts: TypeSet = [t(0), t(2)].into_iter().collect();
        let ps = q.prims_of_types(ts);
        assert_eq!(q.types_of(ps), ts);
    }

    #[test]
    fn duplicate_types_detected() {
        let p = Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(0))]);
        let q = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        assert!(!q.has_distinct_prim_types());
    }

    #[test]
    fn render_and_signature() {
        let q = example_query();
        let catalog = {
            let mut c = Catalog::new();
            c.add_event_type("C").unwrap();
            c.add_event_type("L").unwrap();
            c.add_event_type("F").unwrap();
            c
        };
        assert_eq!(q.render(&catalog), "SEQ(AND(C, L), F)");
        assert_eq!(q.signature(), "SEQ(AND(t0,t1),t2)");
    }
}
