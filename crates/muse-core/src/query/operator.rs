//! Operator trees of CEP queries (§2.2 of the paper).
//!
//! A query is an ordered tree of operators: *primitive* operators detect
//! events of a specific type, *composite* operators (`AND`, `SEQ`, `OR`,
//! `NSEQ`) compose the patterns of their children.

use crate::catalog::Catalog;
use crate::types::{EventTypeId, PrimId, PrimSet};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The semantics of a composite operator (`o.sem` for `o ∈ O_c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Patterns of all children, in the specified order.
    Seq,
    /// Patterns of all children, in any interleaving.
    And,
    /// Pattern of at least one child.
    Or,
    /// Pattern of the first child, followed by the third, with no pattern of
    /// the (negated) second child in between. Always has exactly 3 children.
    NSeq,
}

impl OpKind {
    /// The operator keyword as written in queries.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Seq => "SEQ",
            OpKind::And => "AND",
            OpKind::Or => "OR",
            OpKind::NSeq => "NSEQ",
        }
    }
}

/// A node of a resolved operator tree. Primitive operators carry the
/// [`PrimId`] assigned by the owning [`crate::query::Query`] in left-to-right
/// leaf order; the owning query maps prim ids to event types.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpNode {
    /// A primitive operator detecting events of one type.
    Primitive(PrimId),
    /// A composite operator.
    Composite {
        /// Operator semantics.
        kind: OpKind,
        /// Ordered children (`λ(o)`).
        children: Vec<OpNode>,
    },
}

impl OpNode {
    /// Returns the set of primitive operators in this subtree.
    pub fn prims(&self) -> PrimSet {
        match self {
            OpNode::Primitive(p) => PrimSet::single(*p),
            OpNode::Composite { children, .. } => children
                .iter()
                .fold(PrimSet::empty(), |acc, c| acc.union(c.prims())),
        }
    }

    /// Returns `true` if this node is a primitive operator.
    pub fn is_primitive(&self) -> bool {
        matches!(self, OpNode::Primitive(_))
    }

    /// Number of operators (primitive + composite) in the subtree (`|O|`).
    pub fn num_operators(&self) -> usize {
        match self {
            OpNode::Primitive(_) => 1,
            OpNode::Composite { children, .. } => {
                1 + children.iter().map(OpNode::num_operators).sum::<usize>()
            }
        }
    }

    /// Maximum nesting depth (a single primitive has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            OpNode::Primitive(_) => 1,
            OpNode::Composite { children, .. } => {
                1 + children.iter().map(OpNode::depth).max().unwrap_or(0)
            }
        }
    }

    /// Visits every node in pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a OpNode)) {
        f(self);
        if let OpNode::Composite { children, .. } = self {
            for c in children {
                c.visit(f);
            }
        }
    }

    /// Renders the subtree with event-type names resolved via `prim_types`
    /// and `catalog` (e.g. `SEQ(AND(C, L), F)`).
    pub fn render(&self, prim_types: &[EventTypeId], catalog: &Catalog) -> String {
        let mut s = String::new();
        self.render_into(&mut s, &|p: PrimId| {
            catalog.event_type_name(prim_types[p.index()]).to_string()
        });
        s
    }

    /// Renders the subtree with a caller-provided primitive formatter.
    pub fn render_with(&self, fmt_prim: &impl Fn(PrimId) -> String) -> String {
        let mut s = String::new();
        self.render_into(&mut s, fmt_prim);
        s
    }

    fn render_into(&self, out: &mut String, fmt_prim: &impl Fn(PrimId) -> String) {
        match self {
            OpNode::Primitive(p) => out.push_str(&fmt_prim(*p)),
            OpNode::Composite { kind, children } => {
                out.push_str(kind.name());
                out.push('(');
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    c.render_into(out, fmt_prim);
                }
                out.push(')');
            }
        }
    }

    /// A canonical structural signature of the subtree in terms of *event
    /// types* (not prim ids), used to detect structurally equal projections
    /// across queries for the multi-query extension (§6.2).
    pub fn signature(&self, prim_types: &[EventTypeId]) -> String {
        let mut s = String::new();
        self.signature_into(&mut s, prim_types);
        s
    }

    fn signature_into(&self, out: &mut String, prim_types: &[EventTypeId]) {
        match self {
            OpNode::Primitive(p) => {
                let _ = write!(out, "t{}", prim_types[p.index()].0);
            }
            OpNode::Composite { kind, children } => {
                out.push_str(kind.name());
                out.push('(');
                // AND is commutative: sort child signatures for a canonical
                // form. SEQ and NSEQ are order-sensitive.
                if *kind == OpKind::And || *kind == OpKind::Or {
                    let mut sigs: Vec<String> =
                        children.iter().map(|c| c.signature(prim_types)).collect();
                    sigs.sort();
                    out.push_str(&sigs.join(","));
                } else {
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        c.signature_into(out, prim_types);
                    }
                }
                out.push(')');
            }
        }
    }

    /// An *order-preserving* structural signature of the subtree in terms of
    /// event types. Unlike [`OpNode::signature`], commutative (`AND`/`OR`)
    /// children are rendered in declaration order, so two subtrees with equal
    /// tree signatures have identical left-to-right prim numbering. Use this
    /// — never the canonical [`OpNode::signature`] — wherever equal keys must
    /// imply that predicates over prim ids mean the same thing in both trees
    /// (plan memoization, stream identity, duplicate-query lints):
    /// `AND(t0,t2)` and `AND(t2,t0)` canonicalize to the same signature but
    /// assign `P0` to different event types, so a unary predicate on `P0`
    /// filters different streams.
    pub fn tree_signature(&self, prim_types: &[EventTypeId]) -> String {
        let mut s = String::new();
        self.tree_signature_into(&mut s, prim_types);
        s
    }

    fn tree_signature_into(&self, out: &mut String, prim_types: &[EventTypeId]) {
        match self {
            OpNode::Primitive(p) => {
                let _ = write!(out, "t{}", prim_types[p.index()].0);
            }
            OpNode::Composite { kind, children } => {
                out.push_str(kind.name());
                out.push('(');
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    c.tree_signature_into(out, prim_types);
                }
                out.push(')');
            }
        }
    }
}

/// An unresolved pattern, as written by a user or produced by the parser.
/// Leaves carry event types; [`crate::query::Query::build`] resolves a
/// pattern into an [`OpNode`] tree by assigning prim ids in leaf order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// An event of the given type.
    Leaf(EventTypeId),
    /// Sequence of sub-patterns.
    Seq(Vec<Pattern>),
    /// Conjunction of sub-patterns, any order.
    And(Vec<Pattern>),
    /// Disjunction of sub-patterns.
    Or(Vec<Pattern>),
    /// Negated sequence: first, negated middle, last.
    NSeq(Box<Pattern>, Box<Pattern>, Box<Pattern>),
}

impl Pattern {
    /// Shorthand for a leaf pattern.
    pub fn leaf(ty: EventTypeId) -> Pattern {
        Pattern::Leaf(ty)
    }

    /// Shorthand for a `SEQ` pattern.
    pub fn seq(children: impl IntoIterator<Item = Pattern>) -> Pattern {
        Pattern::Seq(children.into_iter().collect())
    }

    /// Shorthand for an `AND` pattern.
    pub fn and(children: impl IntoIterator<Item = Pattern>) -> Pattern {
        Pattern::And(children.into_iter().collect())
    }

    /// Shorthand for an `OR` pattern.
    pub fn or(children: impl IntoIterator<Item = Pattern>) -> Pattern {
        Pattern::Or(children.into_iter().collect())
    }

    /// Shorthand for an `NSEQ` pattern.
    pub fn nseq(first: Pattern, negated: Pattern, last: Pattern) -> Pattern {
        Pattern::NSeq(Box::new(first), Box::new(negated), Box::new(last))
    }

    /// Number of leaves in the pattern.
    pub fn num_leaves(&self) -> usize {
        match self {
            Pattern::Leaf(_) => 1,
            Pattern::Seq(c) | Pattern::And(c) | Pattern::Or(c) => {
                c.iter().map(Pattern::num_leaves).sum()
            }
            Pattern::NSeq(a, b, c) => a.num_leaves() + b.num_leaves() + c.num_leaves(),
        }
    }

    /// Returns `true` if the pattern contains an `OR` operator anywhere.
    pub fn contains_or(&self) -> bool {
        match self {
            Pattern::Leaf(_) => false,
            Pattern::Or(_) => true,
            Pattern::Seq(c) | Pattern::And(c) => c.iter().any(Pattern::contains_or),
            Pattern::NSeq(a, b, c) => a.contains_or() || b.contains_or() || c.contains_or(),
        }
    }

    /// Splits disjunctions into OR-free alternatives (§2.2: "each query with
    /// a composite operator of type OR can be split into multiple queries
    /// containing solely SEQ, AND, and NSEQ operators").
    ///
    /// The result is the cartesian product of alternative choices over all
    /// `OR` occurrences; each returned pattern is OR-free.
    pub fn split_disjunctions(&self) -> Vec<Pattern> {
        match self {
            Pattern::Leaf(t) => vec![Pattern::Leaf(*t)],
            Pattern::Or(children) => children
                .iter()
                .flat_map(|c| c.split_disjunctions())
                .collect(),
            Pattern::Seq(children) => Self::product(children)
                .into_iter()
                .map(Pattern::Seq)
                .collect(),
            Pattern::And(children) => Self::product(children)
                .into_iter()
                .map(Pattern::And)
                .collect(),
            Pattern::NSeq(a, b, c) => {
                let mut out = Vec::new();
                for a in a.split_disjunctions() {
                    for b in b.split_disjunctions() {
                        for c in c.split_disjunctions() {
                            out.push(Pattern::nseq(a.clone(), b.clone(), c.clone()));
                        }
                    }
                }
                out
            }
        }
    }

    /// Cartesian product of the per-child alternative lists.
    fn product(children: &[Pattern]) -> Vec<Vec<Pattern>> {
        let mut acc: Vec<Vec<Pattern>> = vec![Vec::new()];
        for child in children {
            let alts = child.split_disjunctions();
            let mut next = Vec::with_capacity(acc.len() * alts.len());
            for prefix in &acc {
                for alt in &alts {
                    let mut v = prefix.clone();
                    v.push(alt.clone());
                    next.push(v);
                }
            }
            acc = next;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }

    #[test]
    fn opnode_prims_and_counts() {
        // SEQ(AND(P0, P1), P2)
        let tree = OpNode::Composite {
            kind: OpKind::Seq,
            children: vec![
                OpNode::Composite {
                    kind: OpKind::And,
                    children: vec![OpNode::Primitive(PrimId(0)), OpNode::Primitive(PrimId(1))],
                },
                OpNode::Primitive(PrimId(2)),
            ],
        };
        assert_eq!(tree.prims().len(), 3);
        assert_eq!(tree.num_operators(), 5);
        assert_eq!(tree.depth(), 3);
        assert!(!tree.is_primitive());
        let mut count = 0;
        tree.visit(&mut |_| count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn render_with_names() {
        let mut catalog = Catalog::new();
        let c = catalog.add_event_type("C").unwrap();
        let l = catalog.add_event_type("L").unwrap();
        let f = catalog.add_event_type("F").unwrap();
        let tree = OpNode::Composite {
            kind: OpKind::Seq,
            children: vec![
                OpNode::Composite {
                    kind: OpKind::And,
                    children: vec![OpNode::Primitive(PrimId(0)), OpNode::Primitive(PrimId(1))],
                },
                OpNode::Primitive(PrimId(2)),
            ],
        };
        assert_eq!(tree.render(&[c, l, f], &catalog), "SEQ(AND(C, L), F)");
    }

    #[test]
    fn signature_canonicalizes_and() {
        let types = [t(0), t(1)];
        let a = OpNode::Composite {
            kind: OpKind::And,
            children: vec![OpNode::Primitive(PrimId(0)), OpNode::Primitive(PrimId(1))],
        };
        let b = OpNode::Composite {
            kind: OpKind::And,
            children: vec![OpNode::Primitive(PrimId(1)), OpNode::Primitive(PrimId(0))],
        };
        assert_eq!(a.signature(&types), b.signature(&types));
        let s = OpNode::Composite {
            kind: OpKind::Seq,
            children: vec![OpNode::Primitive(PrimId(0)), OpNode::Primitive(PrimId(1))],
        };
        let s_rev = OpNode::Composite {
            kind: OpKind::Seq,
            children: vec![OpNode::Primitive(PrimId(1)), OpNode::Primitive(PrimId(0))],
        };
        assert_ne!(s.signature(&types), s_rev.signature(&types));
    }

    /// The order-preserving signature must distinguish reordered AND
    /// children even though the canonical signature equates them: prim
    /// numbering differs, so predicates over prim ids are not comparable.
    #[test]
    fn tree_signature_preserves_and_order() {
        let types = [t(0), t(1)];
        let a = OpNode::Composite {
            kind: OpKind::And,
            children: vec![OpNode::Primitive(PrimId(0)), OpNode::Primitive(PrimId(1))],
        };
        let b = OpNode::Composite {
            kind: OpKind::And,
            children: vec![OpNode::Primitive(PrimId(1)), OpNode::Primitive(PrimId(0))],
        };
        assert_eq!(a.signature(&types), b.signature(&types));
        assert_ne!(a.tree_signature(&types), b.tree_signature(&types));
        assert_eq!(a.tree_signature(&types), "AND(t0,t1)");
        assert_eq!(b.tree_signature(&types), "AND(t1,t0)");
    }

    #[test]
    fn pattern_leaf_count() {
        let p = Pattern::seq([
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]);
        assert_eq!(p.num_leaves(), 3);
        assert!(!p.contains_or());
    }

    #[test]
    fn split_disjunctions_simple() {
        // SEQ(OR(A, B), C) → [SEQ(A, C), SEQ(B, C)]
        let p = Pattern::seq([
            Pattern::or([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]);
        assert!(p.contains_or());
        let alts = p.split_disjunctions();
        assert_eq!(alts.len(), 2);
        assert_eq!(
            alts[0],
            Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(2))])
        );
        assert_eq!(
            alts[1],
            Pattern::seq([Pattern::leaf(t(1)), Pattern::leaf(t(2))])
        );
        for alt in alts {
            assert!(!alt.contains_or());
        }
    }

    #[test]
    fn split_disjunctions_product() {
        // AND(OR(A,B), OR(C,D)) → 4 alternatives
        let p = Pattern::and([
            Pattern::or([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::or([Pattern::leaf(t(2)), Pattern::leaf(t(3))]),
        ]);
        assert_eq!(p.split_disjunctions().len(), 4);
    }

    #[test]
    fn split_disjunctions_nseq() {
        let p = Pattern::nseq(
            Pattern::or([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
            Pattern::leaf(t(3)),
        );
        let alts = p.split_disjunctions();
        assert_eq!(alts.len(), 2);
        for alt in alts {
            assert!(!alt.contains_or());
            assert!(matches!(alt, Pattern::NSeq(..)));
        }
    }

    #[test]
    fn split_or_free_is_identity() {
        let p = Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]);
        assert_eq!(p.split_disjunctions(), vec![p.clone()]);
    }
}
