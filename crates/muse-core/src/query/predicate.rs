//! Query predicates (§2.2 of the paper).
//!
//! Predicates are Boolean conditions over constants and the payload
//! attributes of at most two primitive operators, and are assumed to be
//! independent of each other. Each predicate carries a selectivity `σ(a)`,
//! the ratio of candidate matches satisfying it; the selectivity of a query
//! is `σ(q) = Π_{a ∈ P} σ(a)`.

use crate::event::{Event, Value};
use crate::types::{AttrId, PrimId, PrimSet};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality (`=`).
    Eq,
    /// Inequality (`≠`).
    Ne,
    /// Less than (`<`).
    Lt,
    /// Less or equal (`≤`).
    Le,
    /// Greater than (`>`).
    Gt,
    /// Greater or equal (`≥`).
    Ge,
}

impl CmpOp {
    /// Applies the comparison to an ordering result. Incomparable values
    /// (`None`) fail every comparison except `Ne`.
    pub fn test(self, ord: Option<Ordering>) -> bool {
        match (self, ord) {
            (CmpOp::Eq, Some(Ordering::Equal)) => true,
            (CmpOp::Ne, Some(Ordering::Equal)) => false,
            (CmpOp::Ne, _) => true,
            (CmpOp::Lt, Some(Ordering::Less)) => true,
            (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (CmpOp::Gt, Some(Ordering::Greater)) => true,
            (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }

    /// The operator's textual form.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// The body of a predicate: unary (one primitive operator against a
/// constant) or binary (attributes of two primitive operators).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredicateExpr {
    /// `prim.attr OP constant`
    UnaryConst {
        /// The constrained primitive operator.
        prim: PrimId,
        /// The payload attribute.
        attr: AttrId,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// `left.attr OP right.attr`
    BinaryAttr {
        /// Left primitive operator.
        left_prim: PrimId,
        /// Left attribute.
        left_attr: AttrId,
        /// Comparison operator.
        op: CmpOp,
        /// Right primitive operator.
        right_prim: PrimId,
        /// Right attribute.
        right_attr: AttrId,
    },
}

/// A predicate with its selectivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// The Boolean condition.
    pub expr: PredicateExpr,
    /// The ratio of candidate matches satisfying the condition, `σ(a) ∈ (0, 1]`.
    pub selectivity: f64,
}

impl Predicate {
    /// Creates a unary predicate `prim.attr OP value` with a selectivity.
    pub fn unary(prim: PrimId, attr: AttrId, op: CmpOp, value: Value, selectivity: f64) -> Self {
        Self {
            expr: PredicateExpr::UnaryConst {
                prim,
                attr,
                op,
                value,
            },
            selectivity,
        }
    }

    /// Creates a binary predicate `left.attr OP right.attr` with a
    /// selectivity.
    pub fn binary(
        left: (PrimId, AttrId),
        op: CmpOp,
        right: (PrimId, AttrId),
        selectivity: f64,
    ) -> Self {
        Self {
            expr: PredicateExpr::BinaryAttr {
                left_prim: left.0,
                left_attr: left.1,
                op,
                right_prim: right.0,
                right_attr: right.1,
            },
            selectivity,
        }
    }

    /// The set of primitive operators the predicate constrains (at most two,
    /// per the paper's assumption).
    pub fn prims(&self) -> PrimSet {
        match &self.expr {
            PredicateExpr::UnaryConst { prim, .. } => PrimSet::single(*prim),
            PredicateExpr::BinaryAttr {
                left_prim,
                right_prim,
                ..
            } => {
                let mut s = PrimSet::single(*left_prim);
                s.insert(*right_prim);
                s
            }
        }
    }

    /// Evaluates the predicate over a (partial) assignment of primitive
    /// operators to events.
    ///
    /// Returns `None` if an involved event is not yet assigned (the
    /// predicate cannot be decided), `Some(false)` if an assigned event
    /// lacks the attribute or fails the comparison.
    pub fn evaluate<'a>(&self, lookup: impl Fn(PrimId) -> Option<&'a Event>) -> Option<bool> {
        match &self.expr {
            PredicateExpr::UnaryConst {
                prim,
                attr,
                op,
                value,
            } => {
                let e = lookup(*prim)?;
                match e.payload.get(*attr) {
                    Some(v) => Some(op.test(v.partial_cmp_value(value))),
                    None => Some(false),
                }
            }
            PredicateExpr::BinaryAttr {
                left_prim,
                left_attr,
                op,
                right_prim,
                right_attr,
            } => {
                let l = lookup(*left_prim)?;
                let r = lookup(*right_prim)?;
                match (l.payload.get(*left_attr), r.payload.get(*right_attr)) {
                    (Some(lv), Some(rv)) => Some(op.test(lv.partial_cmp_value(rv))),
                    _ => Some(false),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Payload;
    use crate::types::{EventTypeId, NodeId};

    fn event_with(attr: AttrId, v: Value) -> Event {
        let mut p = Payload::new();
        p.set(attr, v);
        Event::with_payload(0, EventTypeId(0), 0, NodeId(0), p)
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.test(Some(Ordering::Equal)));
        assert!(!CmpOp::Eq.test(Some(Ordering::Less)));
        assert!(!CmpOp::Eq.test(None));
        assert!(CmpOp::Ne.test(None));
        assert!(CmpOp::Ne.test(Some(Ordering::Greater)));
        assert!(CmpOp::Le.test(Some(Ordering::Equal)));
        assert!(CmpOp::Ge.test(Some(Ordering::Greater)));
        assert!(!CmpOp::Lt.test(Some(Ordering::Greater)));
    }

    #[test]
    fn unary_predicate() {
        let a = AttrId(0);
        let pred = Predicate::unary(PrimId(0), a, CmpOp::Gt, Value::Int(10), 0.5);
        let hi = event_with(a, Value::Int(20));
        let lo = event_with(a, Value::Int(5));
        assert_eq!(pred.evaluate(|_| Some(&hi)), Some(true));
        assert_eq!(pred.evaluate(|_| Some(&lo)), Some(false));
        assert_eq!(pred.evaluate(|_| None), None);
        assert_eq!(pred.prims(), PrimSet::single(PrimId(0)));
    }

    #[test]
    fn unary_predicate_missing_attr_fails() {
        let pred = Predicate::unary(PrimId(0), AttrId(3), CmpOp::Eq, Value::Int(1), 1.0);
        let e = event_with(AttrId(0), Value::Int(1));
        assert_eq!(pred.evaluate(|_| Some(&e)), Some(false));
    }

    #[test]
    fn binary_predicate_equality() {
        let a = AttrId(0);
        let pred = Predicate::binary((PrimId(0), a), CmpOp::Eq, (PrimId(1), a), 0.1);
        let e1 = event_with(a, Value::Int(42));
        let e2 = event_with(a, Value::Int(42));
        let e3 = event_with(a, Value::Int(7));
        let lookup = |p: PrimId| -> Option<&Event> {
            match p.0 {
                0 => Some(&e1),
                1 => Some(&e2),
                _ => None,
            }
        };
        assert_eq!(pred.evaluate(lookup), Some(true));
        let lookup2 = |p: PrimId| -> Option<&Event> {
            match p.0 {
                0 => Some(&e1),
                1 => Some(&e3),
                _ => None,
            }
        };
        assert_eq!(pred.evaluate(lookup2), Some(false));
        // Partial assignment: undecidable.
        let lookup3 = |p: PrimId| -> Option<&Event> { (p.0 == 0).then_some(&e1) };
        assert_eq!(pred.evaluate(lookup3), None);
        assert_eq!(pred.prims().len(), 2);
    }
}
