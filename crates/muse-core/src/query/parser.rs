//! A parser for SASE-style textual queries, as used in Listing 1 of the
//! paper:
//!
//! ```text
//! PATTERN SEQ(Fail f, Evict e, Kill k, UpdateR u)
//! WHERE f.uID = e.uID AND e.uID = k.uID AND k.uID = u.uID
//! WITHIN 30min
//! ```
//!
//! Grammar (informal):
//!
//! ```text
//! query    := 'PATTERN' pattern ('WHERE' pred ('AND' pred)*)? ('WITHIN' duration)?
//! pattern  := ('SEQ'|'AND'|'OR'|'NSEQ') '(' pattern (',' pattern)* ')'
//!           | TypeName Alias?
//! pred     := ref op (ref | literal) ('{' float '}')?
//! ref      := Alias '.' AttrName
//! op       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! duration := integer ('ms' | 's' | 'sec' | 'min' | 'h')?
//! ```
//!
//! Timestamps are interpreted in milliseconds; a bare `WITHIN` number is
//! taken as raw time units (= ms). Predicate selectivities can be annotated
//! inline (`{0.1}`); otherwise a default provided by [`ParserOptions`]
//! applies.

use crate::catalog::Catalog;
use crate::error::{ModelError, Result};
use crate::event::{Timestamp, Value};
use crate::query::{CmpOp, Pattern, Predicate, Query};
use crate::types::{PrimId, QueryId};
use std::collections::HashMap;
use std::ops::Range;

/// Byte spans (into the original query text) of the elements of a parsed
/// query, so diagnostics can point back into the source. Produced by
/// [`parse_query_with_spans`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuerySpans {
    /// Span of each primitive operator's `PATTERN` leaf (event type name
    /// plus alias, when given), in [`PrimId`] order.
    pub leaves: Vec<Range<usize>>,
    /// Span of each `WHERE` predicate, parallel to [`Query::predicates`].
    pub predicates: Vec<Range<usize>>,
    /// Span of the `WITHIN` clause, when present.
    pub window: Option<Range<usize>>,
}

/// Options controlling parsing behaviour.
#[derive(Debug, Clone)]
pub struct ParserOptions {
    /// Selectivity assigned to predicates without an inline `{σ}` annotation.
    pub default_selectivity: f64,
    /// Register unknown event type names in the catalog instead of erroring.
    pub auto_register_types: bool,
    /// Register unknown attribute names in the catalog instead of erroring.
    pub auto_register_attrs: bool,
    /// Window used when the query has no `WITHIN` clause.
    pub default_window: Timestamp,
}

impl Default for ParserOptions {
    fn default() -> Self {
        Self {
            default_selectivity: 0.1,
            auto_register_types: false,
            auto_register_attrs: true,
            default_window: Timestamp::MAX,
        }
    }
}

/// Parses a SASE-style query string into a [`Query`].
///
/// # Examples
///
/// ```
/// use muse_core::catalog::Catalog;
/// use muse_core::query::parser::{parse_query, ParserOptions};
/// use muse_core::types::QueryId;
///
/// let mut catalog = Catalog::new();
/// for ty in ["Fail", "Evict", "Kill", "UpdateR"] {
///     catalog.add_event_type(ty).unwrap();
/// }
/// let q = parse_query(
///     "PATTERN SEQ(Fail f, Evict e, Kill k, UpdateR u) \
///      WHERE f.uID = e.uID AND e.uID = k.uID AND k.uID = u.uID \
///      WITHIN 30min",
///     QueryId(0),
///     &mut catalog,
///     &ParserOptions::default(),
/// )
/// .unwrap();
/// assert_eq!(q.num_prims(), 4);
/// assert_eq!(q.window(), 30 * 60 * 1000);
/// ```
pub fn parse_query(
    input: &str,
    id: QueryId,
    catalog: &mut Catalog,
    options: &ParserOptions,
) -> Result<Query> {
    let mut p = Parser::new(input, catalog, options);
    p.parse(id)
}

/// Like [`parse_query`], additionally returning the byte spans of the
/// query's pattern leaves, predicates, and window clause, for diagnostics
/// that reference the source text (see the `muse-verify` crate).
pub fn parse_query_with_spans(
    input: &str,
    id: QueryId,
    catalog: &mut Catalog,
    options: &ParserOptions,
) -> Result<(Query, QuerySpans)> {
    let mut p = Parser::new(input, catalog, options);
    let query = p.parse(id)?;
    let spans = std::mem::take(&mut p.spans);
    Ok((query, spans))
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Op(CmpOp),
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ModelError {
        ModelError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<Option<(usize, usize, Token)>> {
        self.skip_ws();
        if self.pos >= self.input.len() {
            return Ok(None);
        }
        let start = self.pos;
        let c = self.input[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b'{' => {
                self.pos += 1;
                Token::LBrace
            }
            b'}' => {
                self.pos += 1;
                Token::RBrace
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b'=' => {
                self.pos += 1;
                // Accept both '=' and '=='.
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                }
                Token::Op(CmpOp::Eq)
            }
            b'!' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                    Token::Op(CmpOp::Ne)
                } else {
                    return Err(self.error("expected '=' after '!'"));
                }
            }
            b'<' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                    Token::Op(CmpOp::Le)
                } else {
                    Token::Op(CmpOp::Lt)
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                    Token::Op(CmpOp::Ge)
                } else {
                    Token::Op(CmpOp::Gt)
                }
            }
            b'\'' | b'"' => {
                let quote = c;
                self.pos += 1;
                let s = self.pos;
                while self.pos < self.input.len() && self.input[self.pos] != quote {
                    self.pos += 1;
                }
                if self.pos >= self.input.len() {
                    return Err(self.error("unterminated string literal"));
                }
                let text = std::str::from_utf8(&self.input[s..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string literal"))?
                    .to_string();
                self.pos += 1;
                Token::Str(text)
            }
            b'0'..=b'9' | b'-' => {
                let s = self.pos;
                self.pos += 1;
                let mut is_float = false;
                while self.pos < self.input.len() {
                    let b = self.input[self.pos];
                    if b.is_ascii_digit() {
                        self.pos += 1;
                    } else if b == b'.'
                        && !is_float
                        && self
                            .input
                            .get(self.pos + 1)
                            .is_some_and(|n| n.is_ascii_digit())
                    {
                        is_float = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.input[s..self.pos]).unwrap();
                if is_float {
                    Token::Float(text.parse().map_err(|_| self.error("invalid float"))?)
                } else {
                    Token::Int(text.parse().map_err(|_| self.error("invalid integer"))?)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s = self.pos;
                while self.pos < self.input.len()
                    && (self.input[self.pos].is_ascii_alphanumeric()
                        || self.input[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Token::Ident(
                    std::str::from_utf8(&self.input[s..self.pos])
                        .unwrap()
                        .to_string(),
                )
            }
            other => {
                return Err(self.error(format!("unexpected character '{}'", other as char)));
            }
        };
        Ok(Some((start, self.pos, tok)))
    }
}

struct Parser<'a> {
    tokens: Vec<(usize, usize, Token)>,
    idx: usize,
    input_len: usize,
    catalog: &'a mut Catalog,
    options: &'a ParserOptions,
    /// alias → prim id, filled while parsing the pattern.
    aliases: HashMap<String, PrimId>,
    next_prim: u8,
    /// Lexer error, surfaced by `parse()` before any token is consumed.
    lex_error: Option<ModelError>,
    /// Source spans of the parsed elements.
    spans: QuerySpans,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, catalog: &'a mut Catalog, options: &'a ParserOptions) -> Self {
        Self {
            tokens: Vec::new(),
            idx: 0,
            input_len: input.len(),
            catalog,
            options,
            aliases: HashMap::new(),
            next_prim: 0,
            lex_error: None,
            spans: QuerySpans::default(),
        }
        .lex(input)
    }

    fn lex(mut self, input: &str) -> Self {
        let mut lexer = Lexer::new(input);
        loop {
            match lexer.next() {
                Ok(Some(t)) => self.tokens.push(t),
                Ok(None) => break,
                Err(e) => {
                    // Defer the error: parse() surfaces it as its Result.
                    self.lex_error = Some(e);
                    break;
                }
            }
        }
        self
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.idx)
            .map(|(o, _, _)| *o)
            .unwrap_or(self.input_len)
    }

    /// End offset of the most recently consumed token.
    fn last_end(&self) -> usize {
        self.idx
            .checked_sub(1)
            .and_then(|i| self.tokens.get(i))
            .map(|(_, e, _)| *e)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> ModelError {
        ModelError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.idx).map(|(_, _, t)| t)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.idx).map(|(_, _, t)| t.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn expect_ident(&mut self, kw: &str) -> Result<()> {
        match self.advance() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            _ => Err(self.error(format!("expected keyword '{kw}'"))),
        }
    }

    fn expect(&mut self, tok: Token) -> Result<()> {
        match self.advance() {
            Some(t) if t == tok => Ok(()),
            _ => Err(self.error(format!("expected {tok:?}"))),
        }
    }

    fn parse(&mut self, id: QueryId) -> Result<Query> {
        // A lexer error means the token stream is truncated; report it
        // rather than a misleading syntax error at the cut-off point.
        if let Some(e) = self.lex_error.take() {
            return Err(e);
        }
        self.expect_ident("PATTERN")?;
        let pattern = self.parse_pattern()?;
        let mut predicates = Vec::new();
        if matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("WHERE")) {
            self.advance();
            loop {
                let start = self.offset();
                predicates.push(self.parse_predicate()?);
                self.spans.predicates.push(start..self.last_end());
                if matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("AND")) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        let mut window = self.options.default_window;
        if matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("WITHIN")) {
            let start = self.offset();
            self.advance();
            window = self.parse_duration()?;
            self.spans.window = Some(start..self.last_end());
        }
        if self.peek().is_some() {
            return Err(self.error("trailing input after query"));
        }
        Query::build(id, &pattern, predicates, window)
    }

    fn parse_pattern(&mut self) -> Result<Pattern> {
        let start_off = self.offset();
        let name = match self.advance() {
            Some(Token::Ident(s)) => s,
            _ => return Err(self.error("expected operator or event type name")),
        };
        let upper = name.to_ascii_uppercase();
        let is_operator = matches!(upper.as_str(), "SEQ" | "AND" | "OR" | "NSEQ")
            && matches!(self.peek(), Some(Token::LParen));
        if is_operator {
            self.expect(Token::LParen)?;
            let mut children = vec![self.parse_pattern()?];
            while matches!(self.peek(), Some(Token::Comma)) {
                self.advance();
                children.push(self.parse_pattern()?);
            }
            self.expect(Token::RParen)?;
            match upper.as_str() {
                "SEQ" => Ok(Pattern::Seq(children)),
                "AND" => Ok(Pattern::And(children)),
                "OR" => Ok(Pattern::Or(children)),
                "NSEQ" => {
                    if children.len() != 3 {
                        return Err(self.error("NSEQ requires exactly 3 children"));
                    }
                    let mut it = children.into_iter();
                    Ok(Pattern::nseq(
                        it.next().unwrap(),
                        it.next().unwrap(),
                        it.next().unwrap(),
                    ))
                }
                _ => unreachable!(),
            }
        } else {
            // Event type, with optional alias.
            let ty = match self.catalog.event_type(&name) {
                Some(ty) => ty,
                None if self.options.auto_register_types => self.catalog.add_event_type(&name)?,
                None => {
                    return Err(self.error(format!("unknown event type '{name}'")));
                }
            };
            let prim = PrimId(self.next_prim);
            self.next_prim = self
                .next_prim
                .checked_add(1)
                .ok_or_else(|| self.error("too many primitive operators"))?;
            if let Some(Token::Ident(alias)) = self.peek() {
                // An identifier directly after a type name is its alias,
                // unless it's a clause keyword.
                let up = alias.to_ascii_uppercase();
                if up != "WHERE" && up != "WITHIN" && up != "AND" {
                    let alias = alias.clone();
                    let alias_offset = self.offset();
                    self.advance();
                    if self.aliases.insert(alias.clone(), prim).is_some() {
                        return Err(ModelError::Parse {
                            offset: alias_offset,
                            message: format!(
                                "duplicate alias '{alias}' shadows an earlier binding"
                            ),
                        });
                    }
                }
            }
            self.spans.leaves.push(start_off..self.last_end());
            Ok(Pattern::Leaf(ty))
        }
    }

    fn parse_predicate(&mut self) -> Result<Predicate> {
        let (l_prim, l_attr) = self.parse_ref()?;
        let op = match self.advance() {
            Some(Token::Op(op)) => op,
            _ => return Err(self.error("expected comparison operator")),
        };
        let pred = match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.advance();
                Predicate::unary(l_prim, l_attr, op, Value::Int(v), 0.0)
            }
            Some(Token::Float(v)) => {
                self.advance();
                Predicate::unary(l_prim, l_attr, op, Value::Float(v), 0.0)
            }
            Some(Token::Str(v)) => {
                self.advance();
                Predicate::unary(l_prim, l_attr, op, Value::Str(v), 0.0)
            }
            Some(Token::Ident(_)) => {
                let (r_prim, r_attr) = self.parse_ref()?;
                Predicate::binary((l_prim, l_attr), op, (r_prim, r_attr), 0.0)
            }
            _ => return Err(self.error("expected literal or attribute reference")),
        };
        // Optional inline selectivity annotation `{σ}`.
        let selectivity = if matches!(self.peek(), Some(Token::LBrace)) {
            self.advance();
            let s = match self.advance() {
                Some(Token::Float(v)) => v,
                Some(Token::Int(v)) => v as f64,
                _ => return Err(self.error("expected selectivity value")),
            };
            self.expect(Token::RBrace)?;
            s
        } else {
            self.options.default_selectivity
        };
        Ok(Predicate {
            selectivity,
            ..pred
        })
    }

    fn parse_ref(&mut self) -> Result<(PrimId, crate::types::AttrId)> {
        let alias = match self.advance() {
            Some(Token::Ident(s)) => s,
            _ => return Err(self.error("expected alias")),
        };
        let prim = *self
            .aliases
            .get(&alias)
            .ok_or_else(|| self.error(format!("unknown alias '{alias}'")))?;
        self.expect(Token::Dot)?;
        let attr_name = match self.advance() {
            Some(Token::Ident(s)) => s,
            _ => return Err(self.error("expected attribute name")),
        };
        let attr = match self.catalog.attr(&attr_name) {
            Some(a) => a,
            None if self.options.auto_register_attrs => self.catalog.add_attr(&attr_name)?,
            None => return Err(self.error(format!("unknown attribute '{attr_name}'"))),
        };
        Ok((prim, attr))
    }

    fn parse_duration(&mut self) -> Result<Timestamp> {
        let value = match self.advance() {
            Some(Token::Int(v)) if v >= 0 => v as u64,
            _ => return Err(self.error("expected non-negative integer duration")),
        };
        let multiplier: u64 = match self.peek() {
            Some(Token::Ident(unit)) => {
                let m = match unit.to_ascii_lowercase().as_str() {
                    "ms" => Some(1),
                    "s" | "sec" => Some(1_000),
                    "min" => Some(60_000),
                    "h" => Some(3_600_000),
                    _ => None,
                };
                match m {
                    Some(m) => {
                        self.advance();
                        m
                    }
                    None => 1,
                }
            }
            _ => 1,
        };
        value
            .checked_mul(multiplier)
            .ok_or_else(|| self.error("duration overflows"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{OpKind, OpNode, PredicateExpr};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for ty in ["Fail", "Evict", "Kill", "UpdateR", "Finish", "C", "L", "F"] {
            c.add_event_type(ty).unwrap();
        }
        c
    }

    #[test]
    fn parses_listing1_query1() {
        let mut cat = catalog();
        let q = parse_query(
            "PATTERN SEQ(Fail f, Evict e, Kill k, UpdateR u)
             WHERE f.uID = e.uID AND e.uID = k.uID AND k.uID = u.uID
             WITHIN 30min",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap();
        assert_eq!(q.num_prims(), 4);
        assert_eq!(q.predicates().len(), 3);
        assert_eq!(q.window(), 30 * 60 * 1000);
        assert_eq!(q.prim_type(PrimId(0)), cat.event_type("Fail").unwrap());
        match q.root() {
            OpNode::Composite { kind, children } => {
                assert_eq!(*kind, OpKind::Seq);
                assert_eq!(children.len(), 4);
            }
            _ => panic!("expected composite root"),
        }
    }

    #[test]
    fn parses_listing1_query2_and() {
        let mut cat = catalog();
        let q = parse_query(
            "PATTERN AND(Finish fi, Fail fa, Kill k, UpdateR u)
             WHERE fi.jID = fa.jID AND fa.jID = k.jID AND k.jID = u.jID
             WITHIN 30min",
            QueryId(1),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap();
        assert_eq!(q.num_prims(), 4);
        match q.root() {
            OpNode::Composite { kind, .. } => assert_eq!(*kind, OpKind::And),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_nested_pattern() {
        let mut cat = catalog();
        let q = parse_query(
            "PATTERN SEQ(AND(C c, L l), F f) WITHIN 1000",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap();
        assert_eq!(q.num_prims(), 3);
        assert_eq!(q.window(), 1000);
        assert_eq!(q.render(&cat), "SEQ(AND(C, L), F)");
    }

    #[test]
    fn parses_nseq() {
        let mut cat = catalog();
        let q = parse_query(
            "PATTERN NSEQ(Fail f, Kill k, UpdateR u) WITHIN 10s",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap();
        assert_eq!(q.nseq_contexts().len(), 1);
        assert_eq!(q.window(), 10_000);
    }

    #[test]
    fn nseq_arity_enforced() {
        let mut cat = catalog();
        let err = parse_query(
            "PATTERN NSEQ(Fail f, Kill k)",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }));
    }

    #[test]
    fn inline_selectivity_annotation() {
        let mut cat = catalog();
        let q = parse_query(
            "PATTERN SEQ(Fail f, Kill k) WHERE f.uID = k.uID {0.25} WITHIN 5s",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap();
        assert_eq!(q.predicates().len(), 1);
        assert!((q.predicates()[0].selectivity - 0.25).abs() < 1e-12);
    }

    #[test]
    fn default_selectivity_applies() {
        let mut cat = catalog();
        let opts = ParserOptions {
            default_selectivity: 0.05,
            ..Default::default()
        };
        let q = parse_query(
            "PATTERN SEQ(Fail f, Kill k) WHERE f.uID = k.uID",
            QueryId(0),
            &mut cat,
            &opts,
        )
        .unwrap();
        assert!((q.predicates()[0].selectivity - 0.05).abs() < 1e-12);
    }

    #[test]
    fn unary_constant_predicate() {
        let mut cat = catalog();
        let q = parse_query(
            "PATTERN SEQ(Fail f, Kill k) WHERE f.code >= 3 {0.5}",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap();
        match &q.predicates()[0].expr {
            PredicateExpr::UnaryConst { op, value, .. } => {
                assert_eq!(*op, CmpOp::Ge);
                assert_eq!(*value, Value::Int(3));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn string_literal_predicate() {
        let mut cat = catalog();
        let q = parse_query(
            "PATTERN SEQ(Fail f, Kill k) WHERE f.reason = 'oom' {0.2}",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap();
        match &q.predicates()[0].expr {
            PredicateExpr::UnaryConst { value, .. } => {
                assert_eq!(*value, Value::Str("oom".into()));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn unknown_type_errors_without_auto_register() {
        let mut cat = catalog();
        let err = parse_query(
            "PATTERN SEQ(Mystery m, Fail f)",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("Mystery"));
    }

    #[test]
    fn auto_register_types() {
        let mut cat = Catalog::new();
        let opts = ParserOptions {
            auto_register_types: true,
            ..Default::default()
        };
        let q = parse_query("PATTERN SEQ(A a, B b)", QueryId(0), &mut cat, &opts).unwrap();
        assert_eq!(cat.num_event_types(), 2);
        assert_eq!(q.num_prims(), 2);
    }

    #[test]
    fn unknown_alias_errors() {
        let mut cat = catalog();
        let err = parse_query(
            "PATTERN SEQ(Fail f, Kill k) WHERE z.uID = f.uID",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("alias"));
    }

    #[test]
    fn duplicate_alias_errors() {
        let mut cat = catalog();
        let err = parse_query(
            "PATTERN SEQ(Fail f, Kill f)",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate alias"));
    }

    #[test]
    fn duplicate_alias_error_points_at_alias_token() {
        let mut cat = catalog();
        let input = "PATTERN SEQ(Fail f, Kill f)";
        let err = parse_query(input, QueryId(0), &mut cat, &ParserOptions::default()).unwrap_err();
        match err {
            ModelError::Parse { offset, .. } => {
                // The span must cover the second `f`, not the closing paren.
                assert_eq!(&input[offset..offset + 1], "f");
                assert_eq!(offset, input.rfind('f').unwrap());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lexer_error_is_surfaced() {
        let mut cat = catalog();
        let err = parse_query(
            "PATTERN SEQ(Fail f, Kill k) #",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unexpected character"),
            "got: {err}"
        );
    }

    #[test]
    fn spans_cover_leaves_predicates_and_window() {
        let mut cat = catalog();
        let input = "PATTERN SEQ(Fail f, Kill k) WHERE f.uID = k.uID WITHIN 5s";
        let (q, spans) =
            parse_query_with_spans(input, QueryId(0), &mut cat, &ParserOptions::default()).unwrap();
        assert_eq!(q.num_prims(), 2);
        assert_eq!(spans.leaves.len(), 2);
        assert_eq!(&input[spans.leaves[0].clone()], "Fail f");
        assert_eq!(&input[spans.leaves[1].clone()], "Kill k");
        assert_eq!(spans.predicates.len(), 1);
        assert_eq!(&input[spans.predicates[0].clone()], "f.uID = k.uID");
        assert_eq!(&input[spans.window.clone().unwrap()], "WITHIN 5s");
    }

    #[test]
    fn or_pattern_parses_then_build_rejects() {
        // OR parses at the pattern level but Query::build refuses it; callers
        // split disjunctions first.
        let mut cat = catalog();
        let err = parse_query(
            "PATTERN OR(Fail f, Kill k)",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidQuery { .. }));
    }

    #[test]
    fn duration_units() {
        let mut cat = catalog();
        for (text, expected) in [
            ("100ms", 100),
            ("2s", 2_000),
            ("3min", 180_000),
            ("1h", 3_600_000),
            ("42", 42),
        ] {
            let q = parse_query(
                &format!("PATTERN SEQ(Fail f, Kill k) WITHIN {text}"),
                QueryId(0),
                &mut cat,
                &ParserOptions::default(),
            )
            .unwrap();
            assert_eq!(q.window(), expected, "for {text}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut cat = catalog();
        let err = parse_query(
            "PATTERN SEQ(Fail f, Kill k) WITHIN 5s garbage",
            QueryId(0),
            &mut cat,
            &ParserOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }));
    }
}
