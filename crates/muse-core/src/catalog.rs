//! Name interning for event types and payload attributes.
//!
//! The formal model of the paper works with an abstract universe of event
//! types `E`. The catalog maps human-readable names (used by the SASE-style
//! query parser and by examples) to the dense [`EventTypeId`] / [`AttrId`]
//! identifiers used everywhere else.

use crate::error::{ModelError, Result};
use crate::types::{AttrId, EventTypeId, MAX_TYPES};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A registry of event-type and attribute names.
///
/// # Examples
///
/// ```
/// use muse_core::catalog::Catalog;
///
/// let mut catalog = Catalog::new();
/// let c = catalog.add_event_type("C").unwrap();
/// let l = catalog.add_event_type("L").unwrap();
/// assert_ne!(c, l);
/// assert_eq!(catalog.event_type("C"), Some(c));
/// assert_eq!(catalog.event_type_name(c), "C");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    type_names: Vec<String>,
    type_ids: HashMap<String, EventTypeId>,
    attr_names: Vec<String>,
    attr_ids: HashMap<String, AttrId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog with `n` anonymous event types named `E0..E{n-1}`.
    ///
    /// Convenient for synthetic experiments where type names carry no
    /// semantics.
    pub fn with_anonymous_types(n: usize) -> Self {
        let mut c = Self::new();
        for i in 0..n {
            c.add_event_type(&format!("E{i}"))
                .expect("anonymous type registration cannot collide");
        }
        c
    }

    /// Registers a new event type and returns its id.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already registered or the type
    /// universe capacity ([`MAX_TYPES`]) is exhausted.
    pub fn add_event_type(&mut self, name: &str) -> Result<EventTypeId> {
        if self.type_ids.contains_key(name) {
            return Err(ModelError::DuplicateName(name.to_string()));
        }
        if self.type_names.len() >= MAX_TYPES {
            return Err(ModelError::CapacityExceeded {
                what: "event types",
                max: MAX_TYPES,
            });
        }
        let id = EventTypeId(self.type_names.len() as u16);
        self.type_names.push(name.to_string());
        self.type_ids.insert(name.to_string(), id);
        Ok(id)
    }

    /// Returns the id of a registered event type, if present.
    pub fn event_type(&self, name: &str) -> Option<EventTypeId> {
        self.type_ids.get(name).copied()
    }

    /// Returns the id of an event type, registering it if unknown.
    pub fn event_type_or_add(&mut self, name: &str) -> Result<EventTypeId> {
        match self.event_type(name) {
            Some(id) => Ok(id),
            None => self.add_event_type(name),
        }
    }

    /// Returns the name of an event type.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this catalog.
    pub fn event_type_name(&self, id: EventTypeId) -> &str {
        &self.type_names[id.index()]
    }

    /// Number of registered event types.
    pub fn num_event_types(&self) -> usize {
        self.type_names.len()
    }

    /// Iterates over all registered event types.
    pub fn event_types(&self) -> impl Iterator<Item = EventTypeId> + '_ {
        (0..self.type_names.len()).map(|i| EventTypeId(i as u16))
    }

    /// Registers a new payload attribute and returns its id.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already registered or more than 256
    /// attributes are requested.
    pub fn add_attr(&mut self, name: &str) -> Result<AttrId> {
        if self.attr_ids.contains_key(name) {
            return Err(ModelError::DuplicateName(name.to_string()));
        }
        if self.attr_names.len() >= 256 {
            return Err(ModelError::CapacityExceeded {
                what: "attributes",
                max: 256,
            });
        }
        let id = AttrId(self.attr_names.len() as u8);
        self.attr_names.push(name.to_string());
        self.attr_ids.insert(name.to_string(), id);
        Ok(id)
    }

    /// Returns the id of a registered attribute, if present.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attr_ids.get(name).copied()
    }

    /// Returns the id of an attribute, registering it if unknown.
    pub fn attr_or_add(&mut self, name: &str) -> Result<AttrId> {
        match self.attr(name) {
            Some(id) => Ok(id),
            None => self.add_attr(name),
        }
    }

    /// Returns the name of an attribute.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this catalog.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attr_names[id.index()]
    }

    /// Number of registered attributes.
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_and_resolves_types() {
        let mut c = Catalog::new();
        let a = c.add_event_type("A").unwrap();
        let b = c.add_event_type("B").unwrap();
        assert_eq!(a, EventTypeId(0));
        assert_eq!(b, EventTypeId(1));
        assert_eq!(c.event_type("A"), Some(a));
        assert_eq!(c.event_type("missing"), None);
        assert_eq!(c.event_type_name(b), "B");
        assert_eq!(c.num_event_types(), 2);
    }

    #[test]
    fn duplicate_type_name_rejected() {
        let mut c = Catalog::new();
        c.add_event_type("A").unwrap();
        assert!(c.add_event_type("A").is_err());
        // or_add variant returns the existing id instead.
        assert_eq!(c.event_type_or_add("A").unwrap(), EventTypeId(0));
    }

    #[test]
    fn anonymous_types() {
        let c = Catalog::with_anonymous_types(5);
        assert_eq!(c.num_event_types(), 5);
        assert_eq!(c.event_type("E3"), Some(EventTypeId(3)));
    }

    #[test]
    fn type_capacity_enforced() {
        let mut c = Catalog::with_anonymous_types(MAX_TYPES);
        assert!(c.add_event_type("overflow").is_err());
    }

    #[test]
    fn attrs() {
        let mut c = Catalog::new();
        let j = c.add_attr("jID").unwrap();
        let u = c.attr_or_add("uID").unwrap();
        assert_ne!(j, u);
        assert_eq!(c.attr("jID"), Some(j));
        assert_eq!(c.attr_name(u), "uID");
        assert!(c.add_attr("jID").is_err());
        assert_eq!(c.num_attrs(), 2);
    }

    #[test]
    fn event_types_iterator() {
        let c = Catalog::with_anonymous_types(3);
        assert_eq!(c.event_types().count(), 3);
    }
}
