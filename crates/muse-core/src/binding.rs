//! Event type bindings (§4.1 of the paper) and vertex covers (Def. 4).
//!
//! Several nodes may generate events of the same type, so the events
//! contributing to one match may differ in origin. An *event type binding*
//! fixes one originating node per primitive operator: a bag of
//! `(event type, node)` tuples. The set of all bindings of a query `q` in a
//! network `Γ` is `𝔈(Γ, q)`, of size `Π_o |producers(o.sem)|`.
//!
//! A vertex of a MuSE graph *covers* the bindings whose matches it
//! generates. Because MuSE graphs route matches per source node, covers are
//! always *product-form*: an independent set of admissible origin nodes per
//! primitive operator. [`Cover`] exploits this for counting without
//! enumeration, which keeps the construction algorithms polynomial in the
//! binding count.
//!
//! Negated primitives (below an `NSEQ` middle child) never appear in
//! matches, so bindings and covers range over the *positive* primitives
//! only; events of negated types are broadcast to the evaluating vertices
//! instead (see `muse-runtime`). For the conjunctive workloads of the
//! paper's evaluation the two readings coincide.

use crate::catalog::Catalog;
use crate::error::{ModelError, Result};
use crate::network::Network;
use crate::query::Query;
use crate::types::{NodeId, NodeSet, PrimId, PrimSet};
use serde::{Deserialize, Serialize};

/// One event type binding: an origin node per (positive) primitive operator,
/// sorted by primitive operator id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventTypeBinding(Vec<(PrimId, NodeId)>);

impl EventTypeBinding {
    /// Creates a binding from `(prim, node)` tuples.
    pub fn new(mut tuples: Vec<(PrimId, NodeId)>) -> Self {
        tuples.sort();
        Self(tuples)
    }

    /// The tuples of the binding in primitive-operator order.
    pub fn tuples(&self) -> &[(PrimId, NodeId)] {
        &self.0
    }

    /// The origin node bound to a primitive operator, if present.
    pub fn node_of(&self, prim: PrimId) -> Option<NodeId> {
        self.0
            .binary_search_by_key(&prim, |(p, _)| *p)
            .ok()
            .map(|i| self.0[i].1)
    }

    /// The set of primitive operators bound by this binding.
    pub fn prims(&self) -> PrimSet {
        self.0.iter().map(|(p, _)| *p).collect()
    }

    /// Returns `true` if `self` is a sub-bag of `other` (every tuple of
    /// `self` appears in `other`). Sub-bags of a query's bindings are
    /// bindings of its projections (§4.2).
    pub fn is_sub_bag_of(&self, other: &EventTypeBinding) -> bool {
        self.0.iter().all(|(p, n)| other.node_of(*p) == Some(*n))
    }

    /// Restricts the binding to the given primitive operators.
    pub fn restrict(&self, prims: PrimSet) -> EventTypeBinding {
        EventTypeBinding(
            self.0
                .iter()
                .filter(|(p, _)| prims.contains(*p))
                .copied()
                .collect(),
        )
    }

    /// Renders the binding like the paper, e.g. `[(C, 1), (L, 2)]`.
    pub fn render(&self, query: &Query, catalog: &Catalog) -> String {
        let parts: Vec<String> = self
            .0
            .iter()
            .map(|(p, n)| {
                format!(
                    "({}, {})",
                    catalog.event_type_name(query.prim_type(*p)),
                    n.0
                )
            })
            .collect();
        format!("[{}]", parts.join(", "))
    }
}

/// The number of event type bindings of the projection of `query` induced
/// by `prims`, i.e. `|𝔈(p)| = Π |producers(type)|` over the positive
/// primitives. Returns 0 if some type has no producer.
///
/// Returned as `f64` because binding counts grow multiplicatively (e.g.
/// `20^8` for eight primitives in a 20-node network).
pub fn num_bindings(query: &Query, prims: PrimSet, network: &Network) -> f64 {
    prims
        .difference(query.negated_prims())
        .iter()
        .map(|p| network.num_producers(query.prim_type(p)) as f64)
        .product()
}

/// Enumerates `𝔈(p)` for the projection of `query` induced by `prims`.
///
/// # Errors
///
/// Returns an error if some retained type has no producer, or if the number
/// of bindings exceeds `limit` (the count is hyper-polynomial; enumeration
/// is only used for validation on small instances).
pub fn enumerate_bindings(
    query: &Query,
    prims: PrimSet,
    network: &Network,
    limit: usize,
) -> Result<Vec<EventTypeBinding>> {
    let positive = prims.difference(query.negated_prims());
    let count = num_bindings(query, prims, network);
    if count == 0.0 {
        let bad = positive
            .iter()
            .find(|p| network.num_producers(query.prim_type(*p)) == 0)
            .expect("zero binding count implies a producerless type");
        return Err(ModelError::TypeWithoutProducer(query.prim_type(bad)));
    }
    if count > limit as f64 {
        return Err(ModelError::UnsupportedInput(format!(
            "{count} event type bindings exceed enumeration limit {limit}"
        )));
    }
    let prim_list: Vec<PrimId> = positive.iter().collect();
    let mut out: Vec<Vec<(PrimId, NodeId)>> = vec![Vec::new()];
    for &prim in &prim_list {
        let producers = network.producers(query.prim_type(prim));
        let mut next = Vec::with_capacity(out.len() * producers.len());
        for partial in &out {
            for node in producers.iter() {
                let mut v = partial.clone();
                v.push((prim, node));
                next.push(v);
            }
        }
        out = next;
    }
    Ok(out.into_iter().map(EventTypeBinding::new).collect())
}

/// A product-form set of event type bindings: an admissible origin-node set
/// per positive primitive operator. The cover `𝔄(v)` of every MuSE graph
/// vertex has this shape (Def. 4: a binding is covered iff each of its
/// tuples has a reachable source vertex).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cover {
    /// Admissible nodes per primitive, sorted by primitive id.
    per_prim: Vec<(PrimId, NodeSet)>,
}

impl Cover {
    /// Creates a cover from per-primitive node sets.
    pub fn new(mut per_prim: Vec<(PrimId, NodeSet)>) -> Self {
        per_prim.sort_by_key(|(p, _)| *p);
        Self { per_prim }
    }

    /// The full cover of a projection: all producers per positive primitive
    /// (`𝔄(v) = 𝔈(p)` for single-sink placements).
    pub fn full(query: &Query, prims: PrimSet, network: &Network) -> Self {
        Self::new(
            prims
                .difference(query.negated_prims())
                .iter()
                .map(|p| (p, network.producers(query.prim_type(p))))
                .collect(),
        )
    }

    /// The primitive operators the cover ranges over.
    pub fn prims(&self) -> PrimSet {
        self.per_prim.iter().map(|(p, _)| *p).collect()
    }

    /// The admissible nodes for one primitive (empty set if the primitive is
    /// not part of the cover).
    pub fn nodes_of(&self, prim: PrimId) -> NodeSet {
        self.per_prim
            .binary_search_by_key(&prim, |(p, _)| *p)
            .ok()
            .map(|i| self.per_prim[i].1)
            .unwrap_or(NodeSet::empty())
    }

    /// Restricts the admissible nodes of one primitive.
    pub fn restrict(&mut self, prim: PrimId, nodes: NodeSet) {
        if let Ok(i) = self.per_prim.binary_search_by_key(&prim, |(p, _)| *p) {
            self.per_prim[i].1 = self.per_prim[i].1.intersect(nodes);
        }
    }

    /// `|𝔄(v)|`: the number of bindings in the cover.
    pub fn count(&self) -> f64 {
        self.per_prim
            .iter()
            .map(|(_, nodes)| nodes.len() as f64)
            .product()
    }

    /// Returns `true` if the cover contains the binding (restricted to the
    /// cover's primitives, each tuple's node must be admissible).
    pub fn contains(&self, binding: &EventTypeBinding) -> bool {
        self.per_prim
            .iter()
            .all(|(p, nodes)| binding.node_of(*p).is_some_and(|n| nodes.contains(n)))
    }

    /// Returns `true` if every binding of `self` is also in `other`
    /// (component-wise subset over the shared primitives; primitives of
    /// `self` missing in `other` are ignored, matching sub-bag semantics).
    pub fn is_subset_of(&self, other: &Cover) -> bool {
        self.per_prim.iter().all(|(p, nodes)| {
            let o = other.nodes_of(*p);
            o.is_empty() || nodes.is_subset(o)
        })
    }

    /// Enumerates the bindings of the cover (validation only; respects no
    /// limit, so call only on small covers).
    pub fn enumerate(&self) -> Vec<EventTypeBinding> {
        let mut out: Vec<Vec<(PrimId, NodeId)>> = vec![Vec::new()];
        for (prim, nodes) in &self.per_prim {
            let mut next = Vec::with_capacity(out.len() * nodes.len().max(1));
            for partial in &out {
                for node in nodes.iter() {
                    let mut v = partial.clone();
                    v.push((*prim, node));
                    next.push(v);
                }
            }
            out = next;
        }
        out.into_iter().map(EventTypeBinding::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::query::{Pattern, Query};
    use crate::types::{EventTypeId, QueryId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// Fig. 2 network Γ: node 1 = {C, F}, node 2 = {C, L}, node 3 = {L},
    /// node 4 = {F} (nodes 0-indexed here as 0..3).
    fn fig2_network() -> Network {
        NetworkBuilder::new(4, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .node(n(3), [t(2)])
            .rate(t(0), 100.0)
            .rate(t(1), 100.0)
            .rate(t(2), 1.0)
            .build()
    }

    fn example_query() -> Query {
        let p = Pattern::seq([
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]);
        Query::build(QueryId(0), &p, vec![], 1000).unwrap()
    }

    #[test]
    fn binding_count_is_product_of_producers() {
        let q = example_query();
        let net = fig2_network();
        // C has 2 producers, L has 2, F has 2 → 8 bindings of the query.
        assert_eq!(num_bindings(&q, q.prims(), &net), 8.0);
        // AND(C, L) projection: 4 bindings.
        let cl: PrimSet = [PrimId(0), PrimId(1)].into_iter().collect();
        assert_eq!(num_bindings(&q, cl, &net), 4.0);
    }

    #[test]
    fn enumerate_matches_count() {
        let q = example_query();
        let net = fig2_network();
        let bindings = enumerate_bindings(&q, q.prims(), &net, 100).unwrap();
        assert_eq!(bindings.len(), 8);
        // All distinct.
        let mut d = bindings.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 8);
        // Every binding assigns a producer of the right type.
        for b in &bindings {
            for (p, node) in b.tuples() {
                assert!(net.generates(*node, q.prim_type(*p)));
            }
        }
    }

    #[test]
    fn enumeration_limit() {
        let q = example_query();
        let net = fig2_network();
        assert!(matches!(
            enumerate_bindings(&q, q.prims(), &net, 4),
            Err(ModelError::UnsupportedInput(_))
        ));
    }

    #[test]
    fn producerless_type_is_error() {
        let q = example_query();
        let mut net = Network::new(2, 3);
        net.set_generates(n(0), t(0));
        net.set_generates(n(1), t(1));
        // Type 2 (F) has no producer.
        assert_eq!(num_bindings(&q, q.prims(), &net), 0.0);
        assert_eq!(
            enumerate_bindings(&q, q.prims(), &net, 100),
            Err(ModelError::TypeWithoutProducer(t(2)))
        );
    }

    #[test]
    fn sub_bag_and_restrict() {
        let big = EventTypeBinding::new(vec![
            (PrimId(0), n(0)),
            (PrimId(1), n(1)),
            (PrimId(2), n(0)),
        ]);
        let small = big.restrict([PrimId(0), PrimId(1)].into_iter().collect());
        assert_eq!(small.tuples().len(), 2);
        assert!(small.is_sub_bag_of(&big));
        assert!(!big.is_sub_bag_of(&small));
        let other = EventTypeBinding::new(vec![(PrimId(0), n(1))]);
        assert!(!other.is_sub_bag_of(&big));
        assert_eq!(big.node_of(PrimId(1)), Some(n(1)));
        assert_eq!(big.node_of(PrimId(5)), None);
    }

    #[test]
    fn negated_prims_excluded_from_bindings() {
        let p = Pattern::nseq(
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::leaf(t(2)),
        );
        let q = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        let net = fig2_network();
        // Positive prims 0 and 2: C×F = 2×2 = 4 bindings (L=prim 1 negated).
        assert_eq!(num_bindings(&q, q.prims(), &net), 4.0);
        let bindings = enumerate_bindings(&q, q.prims(), &net, 100).unwrap();
        assert_eq!(bindings.len(), 4);
        for b in bindings {
            assert!(b.node_of(PrimId(1)).is_none());
        }
    }

    #[test]
    fn cover_full_and_count() {
        let q = example_query();
        let net = fig2_network();
        let cover = Cover::full(&q, q.prims(), &net);
        assert_eq!(cover.count(), 8.0);
        assert_eq!(cover.prims(), q.prims());
        let bindings = enumerate_bindings(&q, q.prims(), &net, 100).unwrap();
        for b in &bindings {
            assert!(cover.contains(b));
        }
        assert_eq!(cover.enumerate().len(), 8);
    }

    #[test]
    fn cover_restrict_partitions() {
        // Example 6: vertex v2 covers bindings of AND(C, L) with C from node
        // 0 only: {[(C,0),(L,1)], [(C,0),(L,2)]}.
        let q = example_query();
        let net = fig2_network();
        let cl: PrimSet = [PrimId(0), PrimId(1)].into_iter().collect();
        let mut v2 = Cover::full(&q, cl, &net);
        v2.restrict(PrimId(0), NodeSet::single(n(0)));
        assert_eq!(v2.count(), 2.0);
        let mut v3 = Cover::full(&q, cl, &net);
        v3.restrict(PrimId(0), NodeSet::single(n(1)));
        assert_eq!(v3.count(), 2.0);
        // v2 and v3 partition 𝔈(AND(C,L)).
        let all = Cover::full(&q, cl, &net).enumerate();
        for b in &all {
            assert!(v2.contains(b) ^ v3.contains(b));
        }
        assert!(v2.is_subset_of(&Cover::full(&q, cl, &net)));
        assert!(!Cover::full(&q, cl, &net).is_subset_of(&v2));
    }

    #[test]
    fn cover_subset_ignores_missing_prims() {
        // A cover over fewer prims is compared on the shared prims only
        // (sub-bag semantics).
        let q = example_query();
        let net = fig2_network();
        let cl: PrimSet = [PrimId(0), PrimId(1)].into_iter().collect();
        let small = Cover::full(&q, cl, &net);
        let big = Cover::full(&q, q.prims(), &net);
        assert!(small.is_subset_of(&big));
        assert!(big.is_subset_of(&small)); // prim 2 ignored
    }

    #[test]
    fn render_binding() {
        let q = example_query();
        let mut catalog = Catalog::new();
        catalog.add_event_type("C").unwrap();
        catalog.add_event_type("L").unwrap();
        catalog.add_event_type("F").unwrap();
        let b = EventTypeBinding::new(vec![(PrimId(0), n(0)), (PrimId(1), n(1))]);
        assert_eq!(b.render(&q, &catalog), "[(C, 0), (L, 1)]");
    }
}
