//! Plan-construction algorithms (§5.3, §6 of the paper) and the baselines
//! used in the evaluation (§7.1).
//!
//! * [`baselines`] — centralized evaluation and traditional *optimal
//!   single-sink operator placement* (oOP);
//! * [`pruning`] — the pruning principles of §6.1 (beneficial projections,
//!   partitioning multi-sink placements);
//! * [`amuse`] — the `aMuSE` / `aMuSE*` approximation algorithms (§6.2);
//! * [`optimal`] — exhaustive, branch-and-bound optimal construction within
//!   the `G^uni` class (Alg. 1, tractable only for tiny instances);
//! * [`multi_query`] — the sequential multi-query extension with projection
//!   reuse (§6.2);
//! * [`pushpull`] — push-pull communication modes for MuSE graph edges,
//!   the future-work integration named in §8.

pub mod amuse;
pub mod baselines;
pub mod multi_query;
pub mod optimal;
pub mod pruning;
pub mod pushpull;
