//! Pruning principles for MuSE graph construction (§6.1 of the paper).
//!
//! * **Beneficial projections** (Def. 13 / Theorem 3): a projection `p` can
//!   only appear in an optimal MuSE graph if some combination satisfies
//!   `r̂(p) ≤ Σ_{e ∈ β(p)} r̂(e)`. Following §6.1.1, the check is performed
//!   against the *primitive combination* (predecessors = `p`'s primitive
//!   operators), using `Σ r(type)` as the upper bound for a suitable
//!   combination's cost.
//! * **aMuSE\* rate filter** (§6.2): aMuSE* additionally requires one input
//!   primitive with `r̂(e) ≥ r̂(p) · |𝔈(p)|`, i.e. hosting `p` at a node
//!   producing `e` must amortize the full fan-out of `p`'s matches.
//! * **Partitioning multi-sink placements** (Eq. 6 / `getMSP` in Alg. 3):
//!   a predecessor `e` of `p` is a *partitioning input* when
//!   `r̂(e) > Σ_{ẽ ∈ β(p) \ e} r̂(ẽ) · |𝔈(ẽ)|` — then `p` is hosted at every
//!   node generating `e` and events of `e` never cross the network.

use crate::binding::num_bindings;
use crate::combination::Combination;
use crate::cost::{primitive_rate_sum, projection_output_rate};
use crate::error::Result;
use crate::network::Network;
use crate::projection::project;
use crate::query::Query;
use crate::types::PrimSet;

/// Output rate of the projection of `query` induced by `prims`
/// (`r̂(p) = σ(p) · r̂(root(p))`).
pub fn projection_rate(query: &Query, prims: PrimSet, network: &Network) -> Result<f64> {
    let p = project(query, prims)?;
    Ok(projection_output_rate(&p, query, network))
}

/// Beneficial-projection test (Def. 13 on the primitive combination):
/// `r̂(p) ≤ Σ_{e ∈ O_p^p} r(e.sem)`.
pub fn is_beneficial(query: &Query, prims: PrimSet, network: &Network) -> Result<bool> {
    let rate = projection_rate(query, prims, network)?;
    Ok(rate <= primitive_rate_sum(prims, query, network))
}

/// The aMuSE* projection filter: some input primitive must have
/// `r̂(e) ≥ r̂(p) · |𝔈(p)|`.
pub fn passes_star_filter(query: &Query, prims: PrimSet, network: &Network) -> Result<bool> {
    let volume = projection_rate(query, prims, network)? * num_bindings(query, prims, network);
    Ok(prims
        .iter()
        .any(|e| network.rate(query.prim_type(e)) >= volume))
}

/// Searches for a *partitioning input* among the predecessors of a
/// combination (Eq. 6): a predecessor `e` with
/// `r̂(e) > Σ_{ẽ ≠ e} r̂(ẽ) · |𝔈(ẽ)|`.
///
/// Returns the qualifying predecessor with the highest rate (the paper's
/// `getMSP` returns the first found; choosing the highest-rate one is a
/// deterministic refinement that never picks a weaker partitioning input).
pub fn partitioning_input(
    query: &Query,
    combination: &Combination,
    network: &Network,
) -> Result<Option<PrimSet>> {
    let mut rates = Vec::with_capacity(combination.predecessors.len());
    for e in &combination.predecessors {
        let rate = projection_rate(query, *e, network)?;
        let bindings = num_bindings(query, *e, network);
        rates.push((*e, rate, bindings));
    }
    Ok(partitioning_input_from_rates(&rates))
}

/// [`partitioning_input`] over precomputed `(predecessor, rate, bindings)`
/// triples — the construction algorithm's hot loop uses this to avoid
/// re-deriving projections.
pub fn partitioning_input_from_rates(rates: &[(PrimSet, f64, f64)]) -> Option<PrimSet> {
    let mut best: Option<(PrimSet, f64)> = None;
    for (i, (e, rate, _)) in rates.iter().enumerate() {
        let others: f64 = rates
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, (_, r, b))| r * b)
            .sum();
        if *rate > others && best.as_ref().is_none_or(|(_, r)| rate > r) {
            best = Some((*e, *rate));
        }
    }
    best.map(|(e, _)| e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::query::{CmpOp, Pattern, Predicate};
    use crate::types::{AttrId, EventTypeId, NodeId, PrimId, QueryId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn ps(prims: impl IntoIterator<Item = u8>) -> PrimSet {
        prims.into_iter().map(PrimId).collect()
    }

    fn network(rates: [f64; 3]) -> Network {
        NetworkBuilder::new(3, 3)
            .node(NodeId(0), [t(0)])
            .node(NodeId(1), [t(1)])
            .node(NodeId(2), [t(2)])
            .rate(t(0), rates[0])
            .rate(t(1), rates[1])
            .rate(t(2), rates[2])
            .build()
    }

    fn query(selectivity: f64) -> Query {
        let preds = if selectivity < 1.0 {
            vec![Predicate::binary(
                (PrimId(0), AttrId(0)),
                CmpOp::Eq,
                (PrimId(1), AttrId(0)),
                selectivity,
            )]
        } else {
            vec![]
        };
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ]),
            preds,
            100,
        )
        .unwrap()
    }

    #[test]
    fn low_selectivity_makes_projection_beneficial() {
        let net = network([10.0, 10.0, 10.0]);
        // σ = 0.01: r̂(SEQ(A,B)) = 0.01·100 = 1 ≤ 20.
        let q = query(0.01);
        assert!(is_beneficial(&q, ps([0, 1]), &net).unwrap());
        // σ = 1: r̂ = 100 > 20.
        let q = query(1.0);
        assert!(!is_beneficial(&q, ps([0, 1]), &net).unwrap());
    }

    #[test]
    fn rare_partner_type_makes_projection_beneficial() {
        // SEQ(B, C) with r(B)=100, r(C)=0.5: r̂ = 50 ≤ 100.5.
        let net = network([10.0, 100.0, 0.5]);
        let q = query(1.0);
        assert!(is_beneficial(&q, ps([1, 2]), &net).unwrap());
    }

    #[test]
    fn single_prim_is_always_beneficial() {
        let net = network([10.0, 10.0, 10.0]);
        let q = query(1.0);
        assert!(is_beneficial(&q, ps([0]), &net).unwrap());
    }

    #[test]
    fn star_filter_requires_dominant_input() {
        let q = query(0.001);
        // r̂(SEQ(A,B)) = 0.001·10·1000 = 10; |𝔈| = 1; r(A)=10 ≥ 10 ✓.
        let net = network([10.0, 1000.0, 1.0]);
        assert!(passes_star_filter(&q, ps([0, 1]), &net).unwrap());
        // With equal mid rates no input dominates the output volume.
        let net = network([10.0, 10.0, 1.0]);
        // r̂ = 0.001·100 = 0.1; r(A) = 10 ≥ 0.1 ✓ — still passes.
        assert!(passes_star_filter(&q, ps([0, 1]), &net).unwrap());
        // High selectivity: r̂ = 100 > both rates → fails.
        let q1 = query(1.0);
        assert!(!passes_star_filter(&q1, ps([0, 1]), &net).unwrap());
    }

    #[test]
    fn partitioning_input_found_for_dominant_rate() {
        // Combination of SEQ(A,B,C) from primitives; r(A) huge, others tiny.
        let net = network([1000.0, 1.0, 1.0]);
        let q = query(1.0);
        let combo = Combination::primitive(ps([0, 1, 2]));
        let part = partitioning_input(&q, &combo, &net).unwrap();
        assert_eq!(part, Some(ps([0])));
    }

    #[test]
    fn no_partitioning_input_for_balanced_rates() {
        let net = network([10.0, 10.0, 10.0]);
        let q = query(1.0);
        let combo = Combination::primitive(ps([0, 1, 2]));
        assert_eq!(partitioning_input(&q, &combo, &net).unwrap(), None);
    }

    #[test]
    fn partitioning_input_accounts_for_bindings() {
        // B produced by two nodes doubles its shipped volume.
        let net = NetworkBuilder::new(3, 3)
            .node(NodeId(0), [t(0)])
            .node(NodeId(1), [t(1)])
            .node(NodeId(2), [t(1), t(2)])
            .rate(t(0), 25.0)
            .rate(t(1), 10.0)
            .rate(t(2), 1.0)
            .build();
        let q = query(1.0);
        let combo = Combination::primitive(ps([0, 1, 2]));
        // Others of A: r(B)·2 + r(C)·1 = 21 < 25 → A partitions.
        assert_eq!(partitioning_input(&q, &combo, &net).unwrap(), Some(ps([0])));
        // Raise B's rate so no predecessor dominates.
        let net2 = NetworkBuilder::new(3, 3)
            .node(NodeId(0), [t(0)])
            .node(NodeId(1), [t(1)])
            .node(NodeId(2), [t(1), t(2)])
            .rate(t(0), 15.0)
            .rate(t(1), 10.0)
            .rate(t(2), 1.0)
            .build();
        assert_eq!(partitioning_input(&q, &combo, &net2).unwrap(), None);
    }
}
