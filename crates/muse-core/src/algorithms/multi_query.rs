//! The multi-query extension of aMuSE (§6.2 of the paper).
//!
//! For a workload `Q`, aMuSE runs sequentially per query. After each query's
//! MuSE graph is fixed, its network transmissions are registered: a later
//! query that needs the *same stream* (identical projection structure over
//! event types, identical predicates, identical covered bindings, identical
//! endpoints) reuses it at zero cost. This realizes both reuse rules of the
//! paper — projections already placed at a node, and event types already
//! disseminated to a node — because both are transmissions of some
//! projection's matches to some node.

use crate::algorithms::amuse::{amuse_with_table, AMuseConfig, ConstructionStats};
use crate::error::Result;
use crate::graph::{MuseGraph, PlanContext, SharedTransmissions, Vertex};
use crate::network::Network;
use crate::projection::ProjectionTable;
use crate::workload::Workload;

/// The result of planning a whole workload.
#[derive(Debug, Clone)]
pub struct WorkloadPlan {
    /// One MuSE graph per query, in workload order.
    pub graphs: Vec<MuseGraph>,
    /// Sinks per query.
    pub sinks: Vec<Vec<Vertex>>,
    /// The union of all per-query graphs (the deployable plan).
    pub merged: MuseGraph,
    /// Projection arena shared by all graphs.
    pub table: ProjectionTable,
    /// Marginal cost per query (cost given the streams established by
    /// earlier queries).
    pub per_query_cost: Vec<f64>,
    /// Total workload cost: the sum of marginal costs — the rate of
    /// *distinct* streams crossing the network.
    pub total_cost: f64,
    /// Construction statistics per query.
    pub stats: Vec<ConstructionStats>,
}

impl WorkloadPlan {
    /// Total network cost of the workload plan.
    pub fn cost(&self) -> f64 {
        self.total_cost
    }
}

/// Plans a workload with aMuSE, reusing projections and event streams
/// already disseminated by earlier queries.
pub fn amuse_workload(
    workload: &Workload,
    network: &Network,
    config: &AMuseConfig,
) -> Result<WorkloadPlan> {
    let mut table = ProjectionTable::new();
    let mut shared = SharedTransmissions::new();
    let mut graphs = Vec::with_capacity(workload.len());
    let mut sinks = Vec::with_capacity(workload.len());
    let mut per_query_cost = Vec::with_capacity(workload.len());
    let mut stats = Vec::with_capacity(workload.len());

    for query in workload.queries() {
        let (graph, query_sinks, cost, query_stats) = amuse_with_table(
            query,
            workload.queries(),
            network,
            config,
            &mut table,
            Some(&shared),
        )?;
        {
            let ctx = PlanContext::new(workload.queries(), network, &table);
            shared.absorb(&graph, &ctx);
        }
        graphs.push(graph);
        sinks.push(query_sinks);
        per_query_cost.push(cost);
        stats.push(query_stats);
    }

    let mut merged = MuseGraph::new();
    for g in &graphs {
        merged.union_with(g);
    }
    let total_cost = per_query_cost.iter().sum();
    Ok(WorkloadPlan {
        graphs,
        sinks,
        merged,
        table,
        per_query_cost,
        total_cost,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::amuse::amuse;
    use crate::catalog::Catalog;
    use crate::network::NetworkBuilder;
    use crate::query::{CmpOp, Pattern, Predicate};
    use crate::types::{AttrId, EventTypeId, NodeId, PrimId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn network() -> Network {
        NetworkBuilder::new(4, 4)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1), t(3)])
            .node(n(3), [t(2), t(3)])
            .rate(t(0), 100.0)
            .rate(t(1), 80.0)
            .rate(t(2), 1.0)
            .rate(t(3), 2.0)
            .build()
    }

    fn pred(a: u8, b: u8, sel: f64) -> Predicate {
        Predicate::binary(
            (PrimId(a), AttrId(0)),
            CmpOp::Eq,
            (PrimId(b), AttrId(0)),
            sel,
        )
    }

    /// Two queries sharing the sub-pattern SEQ(A, B) with equal predicates.
    fn related_workload() -> Workload {
        let catalog = Catalog::with_anonymous_types(4);
        Workload::from_patterns(
            catalog,
            [
                (
                    Pattern::seq([
                        Pattern::leaf(t(0)),
                        Pattern::leaf(t(1)),
                        Pattern::leaf(t(2)),
                    ]),
                    vec![pred(0, 1, 0.01)],
                    1000,
                ),
                (
                    Pattern::seq([
                        Pattern::leaf(t(0)),
                        Pattern::leaf(t(1)),
                        Pattern::leaf(t(3)),
                    ]),
                    vec![pred(0, 1, 0.01)],
                    1000,
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn workload_plan_is_correct_per_query() {
        let net = network();
        let w = related_workload();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        assert_eq!(plan.graphs.len(), 2);
        for (i, g) in plan.graphs.iter().enumerate() {
            let query = &w.queries()[i..=i];
            let ctx = PlanContext::new(query, &net, &plan.table);
            // Well-formedness of the per-query graph w.r.t. its own query.
            g.check_well_formed(&ctx).unwrap();
            g.check_complete(&ctx, 100_000).unwrap();
        }
    }

    #[test]
    fn reuse_makes_total_cheaper_than_independent_sum() {
        let net = network();
        let w = related_workload();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        let independent: f64 = w
            .queries()
            .iter()
            .map(|q| amuse(q, &net, &AMuseConfig::default()).unwrap().cost)
            .sum();
        assert!(
            plan.total_cost <= independent + 1e-9,
            "with reuse {} > independent {independent}",
            plan.total_cost
        );
        // The queries share the SEQ(A, B) sub-pattern with identical
        // predicates, so the second query's marginal cost must be strictly
        // lower than its standalone cost.
        let standalone_q1 = amuse(&w.queries()[1], &net, &AMuseConfig::default())
            .unwrap()
            .cost;
        assert!(
            plan.per_query_cost[1] < standalone_q1 + 1e-9,
            "marginal {} vs standalone {standalone_q1}",
            plan.per_query_cost[1]
        );
    }

    #[test]
    fn merged_graph_contains_all_queries() {
        let net = network();
        let w = related_workload();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        for g in &plan.graphs {
            for v in g.vertices() {
                assert!(plan.merged.contains_vertex(v));
            }
        }
        assert_eq!(plan.sinks.len(), 2);
        assert_eq!(plan.per_query_cost.len(), 2);
        assert!((plan.cost() - plan.per_query_cost.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn unrelated_queries_gain_nothing() {
        // Queries over disjoint types cannot share streams.
        let catalog = Catalog::with_anonymous_types(4);
        let w = Workload::from_patterns(
            catalog,
            [
                (
                    Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(2))]),
                    vec![pred(0, 1, 0.05)],
                    1000,
                ),
                (
                    Pattern::seq([Pattern::leaf(t(1)), Pattern::leaf(t(3))]),
                    vec![pred(0, 1, 0.05)],
                    1000,
                ),
            ],
        )
        .unwrap();
        let net = network();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        let independent: f64 = w
            .queries()
            .iter()
            .map(|q| amuse(q, &net, &AMuseConfig::default()).unwrap().cost)
            .sum();
        assert!((plan.total_cost - independent).abs() < 1e-6);
    }
}
