//! The multi-query extension of aMuSE (§6.2 of the paper).
//!
//! For a workload `Q`, aMuSE runs sequentially per query. After each query's
//! MuSE graph is fixed, its network transmissions are registered: a later
//! query that needs the *same stream* (identical projection structure over
//! event types, identical predicates, identical covered bindings, identical
//! endpoints) reuses it at zero cost. This realizes both reuse rules of the
//! paper — projections already placed at a node, and event types already
//! disseminated to a node — because both are transmissions of some
//! projection's matches to some node.

use crate::algorithms::amuse::{amuse_with_table, AMuseConfig, ConstructionStats};
use crate::error::Result;
use crate::graph::{MuseGraph, PlanContext, SharedTransmissions, Vertex};
use crate::network::Network;
use crate::projection::ProjectionTable;
use crate::query::Query;
use crate::types::QueryId;
use crate::workload::Workload;
use std::collections::HashMap;
use std::fmt::Write as _;

/// The result of planning a whole workload.
#[derive(Debug, Clone)]
pub struct WorkloadPlan {
    /// One MuSE graph per query, in workload order.
    pub graphs: Vec<MuseGraph>,
    /// Sinks per query.
    pub sinks: Vec<Vec<Vertex>>,
    /// The union of all per-query graphs (the deployable plan).
    pub merged: MuseGraph,
    /// Projection arena shared by all graphs.
    pub table: ProjectionTable,
    /// Marginal cost per query (cost given the streams established by
    /// earlier queries).
    pub per_query_cost: Vec<f64>,
    /// Total workload cost: the sum of marginal costs — the rate of
    /// *distinct* streams crossing the network.
    pub total_cost: f64,
    /// Construction statistics per query.
    pub stats: Vec<ConstructionStats>,
    /// Per query: the earlier query whose plan this one structurally
    /// reuses (`None` for freshly constructed plans). A reused plan is the
    /// representative's graph re-labeled onto this query's projections:
    /// identical structure, identical streams, zero marginal cost. The
    /// deployment layer collapses such structurally identical vertices
    /// into shared physical tasks.
    pub plan_reuse: Vec<Option<QueryId>>,
}

impl WorkloadPlan {
    /// Total network cost of the workload plan.
    pub fn cost(&self) -> f64 {
        self.total_cost
    }

    /// Number of queries whose plan was structurally reused from an
    /// earlier query rather than constructed.
    pub fn reused_plans(&self) -> usize {
        self.plan_reuse.iter().filter(|r| r.is_some()).count()
    }
}

/// Canonical structural key of a query: operator tree rendered over event
/// types, the full predicate list, and the window. Equal keys imply
/// identical type trees (hence identical left-to-right prim numbering) and
/// identical predicates over those prims — the queries are
/// indistinguishable to the planner, so one plan serves both.
fn structural_key(query: &Query) -> String {
    // Order-preserving: the canonical `signature` sorts AND/OR children, so
    // equal canonical signatures do NOT imply equal prim numbering — and the
    // relabeling below maps prim ids of the representative's plan directly
    // onto the duplicate.
    let mut s = query.root().tree_signature(query.prim_types());
    for p in query.predicates() {
        let _ = write!(s, ";{p:?}");
    }
    let _ = write!(s, ";w{}", query.window());
    s
}

/// Re-labels a representative query's graph onto a structurally identical
/// query: every vertex `(p, n)` becomes `(π(dup, prims(p)), n)`. Because
/// the queries share their type tree and prim numbering, the projections
/// exist and carry the same structure and predicates.
fn relabel_plan(
    graph: &MuseGraph,
    sinks: &[Vertex],
    table: &mut ProjectionTable,
    dup: &Query,
) -> Result<(MuseGraph, Vec<Vertex>)> {
    // Collect prim sets first: `project_into` needs `&mut table` while the
    // source graph's projections are read through the same table.
    let verts: Vec<_> = graph
        .vertices()
        .map(|v| (table.get(v.proj).prims, v.node))
        .collect();
    let edges: Vec<_> = graph
        .edges()
        .map(|(a, b)| {
            (
                table.get(a.proj).prims,
                a.node,
                table.get(b.proj).prims,
                b.node,
            )
        })
        .collect();
    let sink_keys: Vec<_> = sinks
        .iter()
        .map(|v| (table.get(v.proj).prims, v.node))
        .collect();

    let mut g = MuseGraph::new();
    for (prims, node) in verts {
        let proj = table.project_into(dup, prims)?;
        g.add_vertex(Vertex::new(proj, node));
    }
    for (ap, an, bp, bn) in edges {
        let a = Vertex::new(table.project_into(dup, ap)?, an);
        let b = Vertex::new(table.project_into(dup, bp)?, bn);
        g.add_edge(a, b);
    }
    let mut new_sinks = Vec::with_capacity(sink_keys.len());
    for (prims, node) in sink_keys {
        new_sinks.push(Vertex::new(table.project_into(dup, prims)?, node));
    }
    Ok((g, new_sinks))
}

/// Plans a workload with aMuSE, reusing projections and event streams
/// already disseminated by earlier queries. Queries that are structurally
/// identical to an earlier one (same type tree, predicates, and window)
/// skip construction entirely: the earlier plan is re-labeled onto their
/// projections at zero marginal cost, keeping planning time proportional
/// to the number of *distinct* query structures rather than the workload
/// size.
pub fn amuse_workload(
    workload: &Workload,
    network: &Network,
    config: &AMuseConfig,
) -> Result<WorkloadPlan> {
    let mut table = ProjectionTable::new();
    let mut shared = SharedTransmissions::new();
    let mut graphs: Vec<MuseGraph> = Vec::with_capacity(workload.len());
    let mut sinks: Vec<Vec<Vertex>> = Vec::with_capacity(workload.len());
    let mut per_query_cost = Vec::with_capacity(workload.len());
    let mut stats = Vec::with_capacity(workload.len());
    let mut plan_reuse = Vec::with_capacity(workload.len());
    let mut memo: HashMap<String, usize> = HashMap::new();

    for (qi, query) in workload.queries().iter().enumerate() {
        let key = structural_key(query);
        if let Some(&rep) = memo.get(&key) {
            // Structural duplicate: re-label the representative's plan.
            // Its streams are byte-identical and already established, so
            // the marginal cost is zero and nothing new is absorbed.
            let (graph, query_sinks) = relabel_plan(&graphs[rep], &sinks[rep], &mut table, query)?;
            graphs.push(graph);
            sinks.push(query_sinks);
            per_query_cost.push(0.0);
            stats.push(ConstructionStats::default());
            plan_reuse.push(Some(workload.queries()[rep].id()));
            continue;
        }
        memo.insert(key, qi);
        let (graph, query_sinks, cost, query_stats) = amuse_with_table(
            query,
            workload.queries(),
            network,
            config,
            &mut table,
            Some(&shared),
        )?;
        {
            let ctx = PlanContext::new(workload.queries(), network, &table);
            shared.absorb(&graph, &ctx);
        }
        graphs.push(graph);
        sinks.push(query_sinks);
        per_query_cost.push(cost);
        stats.push(query_stats);
        plan_reuse.push(None);
    }

    let mut merged = MuseGraph::new();
    for g in &graphs {
        merged.union_with(g);
    }
    let total_cost = per_query_cost.iter().sum();
    Ok(WorkloadPlan {
        graphs,
        sinks,
        merged,
        table,
        per_query_cost,
        total_cost,
        stats,
        plan_reuse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::amuse::amuse;
    use crate::catalog::Catalog;
    use crate::network::NetworkBuilder;
    use crate::query::{CmpOp, Pattern, Predicate};
    use crate::types::{AttrId, EventTypeId, NodeId, PrimId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn network() -> Network {
        NetworkBuilder::new(4, 4)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1), t(3)])
            .node(n(3), [t(2), t(3)])
            .rate(t(0), 100.0)
            .rate(t(1), 80.0)
            .rate(t(2), 1.0)
            .rate(t(3), 2.0)
            .build()
    }

    fn pred(a: u8, b: u8, sel: f64) -> Predicate {
        Predicate::binary(
            (PrimId(a), AttrId(0)),
            CmpOp::Eq,
            (PrimId(b), AttrId(0)),
            sel,
        )
    }

    /// Two queries sharing the sub-pattern SEQ(A, B) with equal predicates.
    fn related_workload() -> Workload {
        let catalog = Catalog::with_anonymous_types(4);
        Workload::from_patterns(
            catalog,
            [
                (
                    Pattern::seq([
                        Pattern::leaf(t(0)),
                        Pattern::leaf(t(1)),
                        Pattern::leaf(t(2)),
                    ]),
                    vec![pred(0, 1, 0.01)],
                    1000,
                ),
                (
                    Pattern::seq([
                        Pattern::leaf(t(0)),
                        Pattern::leaf(t(1)),
                        Pattern::leaf(t(3)),
                    ]),
                    vec![pred(0, 1, 0.01)],
                    1000,
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn workload_plan_is_correct_per_query() {
        let net = network();
        let w = related_workload();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        assert_eq!(plan.graphs.len(), 2);
        for (i, g) in plan.graphs.iter().enumerate() {
            let query = &w.queries()[i..=i];
            let ctx = PlanContext::new(query, &net, &plan.table);
            // Well-formedness of the per-query graph w.r.t. its own query.
            g.check_well_formed(&ctx).unwrap();
            g.check_complete(&ctx, 100_000).unwrap();
        }
    }

    #[test]
    fn reuse_makes_total_cheaper_than_independent_sum() {
        let net = network();
        let w = related_workload();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        let independent: f64 = w
            .queries()
            .iter()
            .map(|q| amuse(q, &net, &AMuseConfig::default()).unwrap().cost)
            .sum();
        assert!(
            plan.total_cost <= independent + 1e-9,
            "with reuse {} > independent {independent}",
            plan.total_cost
        );
        // The queries share the SEQ(A, B) sub-pattern with identical
        // predicates, so the second query's marginal cost must be strictly
        // lower than its standalone cost.
        let standalone_q1 = amuse(&w.queries()[1], &net, &AMuseConfig::default())
            .unwrap()
            .cost;
        assert!(
            plan.per_query_cost[1] < standalone_q1 + 1e-9,
            "marginal {} vs standalone {standalone_q1}",
            plan.per_query_cost[1]
        );
    }

    #[test]
    fn merged_graph_contains_all_queries() {
        let net = network();
        let w = related_workload();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        for g in &plan.graphs {
            for v in g.vertices() {
                assert!(plan.merged.contains_vertex(v));
            }
        }
        assert_eq!(plan.sinks.len(), 2);
        assert_eq!(plan.per_query_cost.len(), 2);
        assert!((plan.cost() - plan.per_query_cost.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn duplicate_queries_reuse_plans_at_zero_cost() {
        let catalog = Catalog::with_anonymous_types(4);
        let pat = || {
            Pattern::seq([
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ])
        };
        let w = Workload::from_patterns(
            catalog,
            [
                (pat(), vec![pred(0, 1, 0.01)], 1000),
                (pat(), vec![pred(0, 1, 0.01)], 1000),
                // Same structure, different window: must NOT be reused.
                (pat(), vec![pred(0, 1, 0.01)], 2000),
            ],
        )
        .unwrap();
        let net = network();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        assert_eq!(plan.plan_reuse[0], None);
        assert_eq!(plan.plan_reuse[1], Some(w.queries()[0].id()));
        assert_eq!(plan.plan_reuse[2], None);
        assert_eq!(plan.reused_plans(), 1);
        assert_eq!(plan.per_query_cost[1], 0.0);
        // The relabeled plan is well-formed and complete for its own query.
        let query = &w.queries()[1..=1];
        let ctx = PlanContext::new(query, &net, &plan.table);
        plan.graphs[1].check_well_formed(&ctx).unwrap();
        plan.graphs[1].check_complete(&ctx, 100_000).unwrap();
        // Structure mirrors the representative node-for-node.
        assert_eq!(plan.graphs[1].num_vertices(), plan.graphs[0].num_vertices());
    }

    /// AND(t0,t2) and AND(t2,t0) canonicalize to the same signature, but
    /// their prim numbering differs — reusing one plan for the other would
    /// place the relabeled query's primitive vertices at the wrong producer
    /// nodes. The memo key must keep them apart, and both resulting plans
    /// must be correct for their own queries.
    #[test]
    fn reordered_and_children_are_not_structural_duplicates() {
        let catalog = Catalog::with_anonymous_types(4);
        let unary = |p: u8| {
            Predicate::unary(
                PrimId(p),
                AttrId(1),
                CmpOp::Ge,
                crate::event::Value::Int(5),
                0.5,
            )
        };
        let w = Workload::from_patterns(
            catalog,
            [
                (
                    Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(2))]),
                    vec![unary(0)],
                    1000,
                ),
                (
                    Pattern::and([Pattern::leaf(t(2)), Pattern::leaf(t(0))]),
                    vec![unary(0)],
                    1000,
                ),
            ],
        )
        .unwrap();
        let a = &w.queries()[0];
        let b = &w.queries()[1];
        assert_eq!(a.signature(), b.signature());
        let net = network();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        assert_eq!(plan.plan_reuse, vec![None, None]);
        for (i, g) in plan.graphs.iter().enumerate() {
            let query = &w.queries()[i..=i];
            let ctx = PlanContext::new(query, &net, &plan.table);
            g.check_well_formed(&ctx).unwrap();
            g.check_complete(&ctx, 100_000).unwrap();
        }
    }

    #[test]
    fn unrelated_queries_gain_nothing() {
        // Queries over disjoint types cannot share streams.
        let catalog = Catalog::with_anonymous_types(4);
        let w = Workload::from_patterns(
            catalog,
            [
                (
                    Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(2))]),
                    vec![pred(0, 1, 0.05)],
                    1000,
                ),
                (
                    Pattern::seq([Pattern::leaf(t(1)), Pattern::leaf(t(3))]),
                    vec![pred(0, 1, 0.05)],
                    1000,
                ),
            ],
        )
        .unwrap();
        let net = network();
        let plan = amuse_workload(&w, &net, &AMuseConfig::default()).unwrap();
        let independent: f64 = w
            .queries()
            .iter()
            .map(|q| amuse(q, &net, &AMuseConfig::default()).unwrap().cost)
            .sum();
        assert!((plan.total_cost - independent).abs() < 1e-6);
    }
}
