//! Baseline evaluation strategies (§3 and §7.1 of the paper).
//!
//! * **Centralized**: every node ships every event to a central instance
//!   outside the network; the cost is the total event generation rate.
//! * **Naive in-network**: all operators of a query evaluated at the single
//!   in-network node minimizing raw event delivery (Fig. 1a / Example 2).
//! * **Optimal operator placement (oOP)**: the traditional model — each
//!   *composite* operator of the query's operator hierarchy is assigned to
//!   exactly one node so that the total transmission rate is minimal,
//!   yielding a single sink per query. Because query operator trees are
//!   trees, the optimum is found by dynamic programming over the hierarchy
//!   (cf. Bokhari's tree-assignment result cited in the paper's Theorem 1).

use crate::cost::operator_output_rate;
use crate::network::Network;
use crate::query::{OpNode, Query};
use crate::types::{NodeId, PrimSet};
use serde::{Deserialize, Serialize};

/// Network cost of centralized evaluation: all events of all types
/// referenced by the workload are sent out of the network, i.e.
/// `Σ_E r(E) · |producers(E)|`.
pub fn centralized_cost(queries: &[Query], network: &Network) -> f64 {
    let types = queries
        .iter()
        .fold(crate::types::TypeSet::empty(), |acc, q| {
            acc.union(q.types())
        });
    types.iter().map(|ty| network.total_rate(ty)).sum()
}

/// Network cost of naively evaluating the whole workload at the single
/// in-network node with the cheapest event delivery (Example 2). Returns
/// `(best node, cost)`.
pub fn naive_single_node_cost(queries: &[Query], network: &Network) -> (NodeId, f64) {
    let types = queries
        .iter()
        .fold(crate::types::TypeSet::empty(), |acc, q| {
            acc.union(q.types())
        });
    let mut best = (NodeId(0), f64::INFINITY);
    for node in network.nodes() {
        let cost: f64 = types
            .iter()
            .map(|ty| {
                let producers = network.num_producers(ty) as f64;
                let local = network.generates(node, ty) as u8 as f64;
                network.rate(ty) * (producers - local)
            })
            .sum();
        if cost < best.1 {
            best = (node, cost);
        }
    }
    best
}

/// A single-sink operator placement: one node per composite operator of the
/// query, identified by the operator's primitive set (unique per query under
/// the distinct-event-types assumption).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorPlacement {
    /// `(operator primitives, hosting node)` per composite operator.
    pub assignments: Vec<(PrimSet, NodeId)>,
    /// Total network cost of the placement.
    pub cost: f64,
}

impl OperatorPlacement {
    /// The node hosting the query's root operator (the sink).
    pub fn sink(&self, query: &Query) -> Option<NodeId> {
        let root_prims = query.prims();
        self.assignments
            .iter()
            .find(|(p, _)| *p == root_prims)
            .map(|(_, n)| *n)
    }
}

/// Computes the *optimal* single-sink operator placement of a query by
/// dynamic programming over the operator tree.
///
/// Sub-problem: `cost(o, n)` = minimal transmission rate to make the matches
/// of subtree `o` available at node `n`. A primitive child of type `E`
/// contributes the delivery of its events from every producer other than `n`
/// (`r(E) · (|producers| − [n ∈ producers])`); a composite child placed at
/// `m ≠ n` additionally ships its matches at rate
/// `σ(c) · r̂(c) · |𝔈(c)|`.
pub fn optimal_operator_placement(query: &Query, network: &Network) -> OperatorPlacement {
    optimal_operator_placement_shared(query, network, &Default::default())
}

/// [`optimal_operator_placement`] with a set of already-established
/// primitive streams `(type, from, to)` whose reuse is free — the workload
/// variant places queries sequentially with this accounting, mirroring the
/// multi-query reuse of the MuSE planner.
pub fn optimal_operator_placement_shared(
    query: &Query,
    network: &Network,
    shared: &std::collections::HashSet<(crate::types::EventTypeId, NodeId, NodeId)>,
) -> OperatorPlacement {
    let n_nodes = network.num_nodes();
    assert!(n_nodes > 0, "network has no node");
    let mut solver = OopSolver {
        query,
        network,
        assignments: Vec::new(),
        shared,
    };
    let costs = solver.place(query.root());
    let (best_node, best_cost) = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, c)| (NodeId(i as u16), *c))
        .expect("non-empty network");
    // Re-run choosing concrete placements along the optimum.
    let mut solver = OopSolver {
        query,
        network,
        assignments: Vec::new(),
        shared,
    };
    solver.reconstruct(query.root(), best_node);
    OperatorPlacement {
        assignments: solver.assignments,
        cost: best_cost,
    }
}

/// Sum of oOP costs over a workload (each query placed independently, as in
/// the paper's baseline), *with stream sharing*: an event stream delivered
/// to a node for one query is reused by every other query needing it there
/// — otherwise a workload of related queries would be charged the same raw
/// streams several times, which no real transport does.
pub fn optimal_operator_placement_workload(queries: &[Query], network: &Network) -> f64 {
    use crate::graph::{PlanContext, SharedTransmissions};
    let mut table = crate::projection::ProjectionTable::new();
    let placements = optimal_operator_placement_workload_placements(queries, network);
    let graphs: Vec<crate::graph::MuseGraph> = queries
        .iter()
        .zip(&placements)
        .map(|(q, placement)| {
            placement_to_graph(q, placement, network, &mut table)
                .expect("placement graph construction")
        })
        .collect();
    let mut shared = SharedTransmissions::new();
    let mut total = 0.0;
    for g in &graphs {
        let transmissions = {
            let ctx = PlanContext::new(queries, network, &table).with_shared(&shared);
            total += g.cost(&ctx);
            g.transmissions(&ctx)
        };
        for (key, from, to) in transmissions {
            shared.insert(key, from, to);
        }
    }
    total
}

/// The per-query placements underlying
/// [`optimal_operator_placement_workload`]: queries are placed sequentially
/// and each sees the primitive streams established by its predecessors, so
/// related queries gravitate to shared sinks.
pub fn optimal_operator_placement_workload_placements(
    queries: &[Query],
    network: &Network,
) -> Vec<OperatorPlacement> {
    // Sequential sharing-aware placement: each query sees the primitive
    // streams established by the previous queries' placements.
    let mut established: std::collections::HashSet<(crate::types::EventTypeId, NodeId, NodeId)> =
        Default::default();
    queries
        .iter()
        .map(|q| {
            let placement = optimal_operator_placement_shared(q, network, &established);
            // Register the primitive deliveries this placement induces: the
            // primitive children of each composite operator flow to its node.
            fn register(
                node: &OpNode,
                query: &Query,
                network: &Network,
                placement: &OperatorPlacement,
                established: &mut std::collections::HashSet<(
                    crate::types::EventTypeId,
                    NodeId,
                    NodeId,
                )>,
            ) {
                if let OpNode::Composite { children, .. } = node {
                    let at = placement
                        .assignments
                        .iter()
                        .find(|(p, _)| *p == node.prims())
                        .map(|(_, n)| *n)
                        .expect("assignment for composite");
                    for child in children {
                        match child {
                            OpNode::Primitive(p) => {
                                let ty = query.prim_type(*p);
                                for m in network.producers(ty).iter() {
                                    if m != at {
                                        established.insert((ty, m, at));
                                    }
                                }
                            }
                            OpNode::Composite { .. } => {
                                register(child, query, network, placement, established)
                            }
                        }
                    }
                }
            }
            register(q.root(), q, network, &placement, &mut established);
            placement
        })
        .collect()
}

/// Sum of per-query oOP costs without cross-query stream sharing (the naive
/// accounting; kept for comparison).
pub fn optimal_operator_placement_workload_unshared(queries: &[Query], network: &Network) -> f64 {
    queries
        .iter()
        .map(|q| optimal_operator_placement(q, network).cost)
        .sum()
}

struct OopSolver<'a> {
    query: &'a Query,
    network: &'a Network,
    assignments: Vec<(PrimSet, NodeId)>,
    /// Primitive streams `(type, from, to)` already established by earlier
    /// queries' placements — free to reuse (workload accounting).
    shared: &'a std::collections::HashSet<(crate::types::EventTypeId, NodeId, NodeId)>,
}

impl OopSolver<'_> {
    /// Delivery cost of all events of a primitive operator to node `n`:
    /// every producer other than `n` ships, unless its stream to `n` is
    /// already established by an earlier placement.
    fn primitive_delivery(&self, prim: crate::types::PrimId, n: usize) -> f64 {
        let ty = self.query.prim_type(prim);
        let to = NodeId(n as u16);
        self.network
            .producers(ty)
            .iter()
            .filter(|&m| m != to && !self.shared.contains(&(ty, m, to)))
            .count() as f64
            * self.network.rate(ty)
    }

    /// Transmission rate of a composite subtree's matches over one hop:
    /// output rate times the number of event type bindings.
    fn subtree_volume(&self, node: &OpNode) -> f64 {
        let prims = node.prims();
        let selectivity = self.query.selectivity_within(prims);
        let rate = operator_output_rate(node, self.query, self.network);
        let bindings = crate::binding::num_bindings(self.query, prims, self.network);
        selectivity * rate * bindings
    }

    /// Minimal cost of evaluating `node` at each network node.
    fn place(&mut self, node: &OpNode) -> Vec<f64> {
        let n_nodes = self.network.num_nodes();
        match node {
            OpNode::Primitive(p) => (0..n_nodes)
                .map(|n| self.primitive_delivery(*p, n))
                .collect(),
            OpNode::Composite { children, .. } => {
                let mut totals = vec![0.0; n_nodes];
                for child in children {
                    match child {
                        OpNode::Primitive(p) => {
                            for (n, t) in totals.iter_mut().enumerate() {
                                *t += self.primitive_delivery(*p, n);
                            }
                        }
                        OpNode::Composite { .. } => {
                            let child_costs = self.place(child);
                            let volume = self.subtree_volume(child);
                            for (n, t) in totals.iter_mut().enumerate() {
                                let best = child_costs
                                    .iter()
                                    .enumerate()
                                    .map(|(m, c)| c + if m == n { 0.0 } else { volume })
                                    .fold(f64::INFINITY, f64::min);
                                *t += best;
                            }
                        }
                    }
                }
                totals
            }
        }
    }

    /// Re-derives the per-operator node choices along the optimal solution.
    fn reconstruct(&mut self, node: &OpNode, at: NodeId) {
        if let OpNode::Composite { children, .. } = node {
            self.assignments.push((node.prims(), at));
            for child in children {
                if let OpNode::Composite { .. } = child {
                    let child_costs = self.place(child);
                    let volume = self.subtree_volume(child);
                    let best_m = child_costs
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            let ca = a.1 + if a.0 == at.index() { 0.0 } else { volume };
                            let cb = b.1 + if b.0 == at.index() { 0.0 } else { volume };
                            ca.total_cmp(&cb)
                        })
                        .map(|(m, _)| NodeId(m as u16))
                        .expect("non-empty network");
                    self.reconstruct(child, best_m);
                }
            }
        }
    }
}

/// Converts a single-sink operator placement into a MuSE graph, so that
/// traditional plans run on the same execution engine as MuSE plans (the
/// paper's case study compares both on one engine, §7.3).
///
/// The operator hierarchy *is* a set of projections: each composite
/// operator's subtree is the projection induced by its primitive operators,
/// the predecessors of an operator are its children, and each operator is
/// hosted at exactly one node — i.e. the classical model is the restriction
/// of MuSE graphs to hierarchy projections with single-sink placements.
pub fn placement_to_graph(
    query: &Query,
    placement: &OperatorPlacement,
    network: &Network,
    table: &mut crate::projection::ProjectionTable,
) -> crate::error::Result<crate::graph::MuseGraph> {
    use crate::graph::{MuseGraph, Vertex};
    let mut graph = MuseGraph::new();
    let node_of = |prims: PrimSet| -> NodeId {
        placement
            .assignments
            .iter()
            .find(|(p, _)| *p == prims)
            .map(|(_, n)| *n)
            .expect("assignment for composite operator")
    };

    // Recursive construction returning the subtree's output vertex.
    fn build(
        node: &OpNode,
        query: &Query,
        network: &Network,
        table: &mut crate::projection::ProjectionTable,
        graph: &mut crate::graph::MuseGraph,
        node_of: &impl Fn(PrimSet) -> NodeId,
    ) -> crate::error::Result<crate::graph::Vertex> {
        match node {
            OpNode::Primitive(_) => unreachable!("handled by the parent"),
            OpNode::Composite { children, .. } => {
                let prims = node.prims();
                let proj = table.project_into(query, prims)?;
                let at = node_of(prims);
                let v = crate::graph::Vertex::new(proj, at);
                graph.add_vertex(v);
                for child in children {
                    match child {
                        OpNode::Primitive(p) => {
                            let cp = table.project_into(query, PrimSet::single(*p))?;
                            for producer in network.producers(query.prim_type(*p)).iter() {
                                graph.add_edge(crate::graph::Vertex::new(cp, producer), v);
                            }
                        }
                        OpNode::Composite { .. } => {
                            let cv = build(child, query, network, table, graph, node_of)?;
                            graph.add_edge(cv, v);
                        }
                    }
                }
                Ok(v)
            }
        }
    }

    match query.root() {
        OpNode::Primitive(p) => {
            // A primitive query has no composite operator: its "plan" is
            // the set of producer vertices.
            let proj = table.project_into(query, PrimSet::single(*p))?;
            for producer in network.producers(query.prim_type(*p)).iter() {
                graph.add_vertex(Vertex::new(proj, producer));
            }
        }
        root => {
            build(root, query, network, table, &mut graph, &node_of)?;
        }
    }
    Ok(graph)
}

/// Exhaustive single-sink operator placement for cross-checking the DP on
/// tiny instances: enumerates every assignment of composite operators to
/// nodes. Exponential — guard with small `|N|^|O_c|` only.
pub fn exhaustive_operator_placement(query: &Query, network: &Network) -> f64 {
    // Collect composite operators in pre-order.
    let mut composites: Vec<&OpNode> = Vec::new();
    collect_composites(query.root(), &mut composites);
    let n_nodes = network.num_nodes();
    let combos = (n_nodes as f64).powi(composites.len() as i32);
    assert!(
        combos <= 1e7,
        "exhaustive placement infeasible: {combos} assignments"
    );
    let mut best = f64::INFINITY;
    let mut assignment = vec![0usize; composites.len()];
    loop {
        let cost = assignment_cost(query, network, &composites, &assignment);
        best = best.min(cost);
        // Next assignment (odometer).
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return best;
            }
            assignment[i] += 1;
            if assignment[i] < n_nodes {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

fn collect_composites<'a>(node: &'a OpNode, out: &mut Vec<&'a OpNode>) {
    if let OpNode::Composite { children, .. } = node {
        out.push(node);
        for c in children {
            collect_composites(c, out);
        }
    }
}

fn assignment_cost(
    query: &Query,
    network: &Network,
    composites: &[&OpNode],
    assignment: &[usize],
) -> f64 {
    // Index of a composite operator by pointer equality.
    let index_of = |node: &OpNode| {
        composites
            .iter()
            .position(|c| std::ptr::eq(*c, node))
            .expect("composite collected")
    };
    let mut total = 0.0;
    for (i, op) in composites.iter().enumerate() {
        let at = assignment[i];
        let OpNode::Composite { children, .. } = op else {
            unreachable!()
        };
        for child in children {
            match child {
                OpNode::Primitive(p) => {
                    let ty = query.prim_type(*p);
                    let producers = network.num_producers(ty) as f64;
                    let local = network.generates(NodeId(at as u16), ty) as u8 as f64;
                    total += network.rate(ty) * (producers - local);
                }
                OpNode::Composite { .. } => {
                    let j = index_of(child);
                    if assignment[j] != at {
                        let prims = child.prims();
                        let volume = query.selectivity_within(prims)
                            * operator_output_rate(child, query, network)
                            * crate::binding::num_bindings(query, prims, network);
                        total += volume;
                    }
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::query::Pattern;
    use crate::types::{EventTypeId, QueryId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// Fig. 1 network: R1 = {C, F}, R2 = {C, L}, R3 = {L}.
    fn fig1_network() -> Network {
        NetworkBuilder::new(3, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .rate(t(0), 100.0)
            .rate(t(1), 100.0)
            .rate(t(2), 1.0)
            .build()
    }

    fn example_query() -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            1000,
        )
        .unwrap()
    }

    #[test]
    fn centralized_sums_total_rates() {
        let net = fig1_network();
        let q = example_query();
        // C: 2 producers · 100 + L: 2 · 100 + F: 1 · 1 = 401.
        assert_eq!(centralized_cost(std::slice::from_ref(&q), &net), 401.0);
    }

    #[test]
    fn naive_single_node_matches_example2() {
        // Example 2: evaluating at R2 costs r(F) + r(C) + r(L) = 201;
        // at R3 it costs r(F) + 2·r(C) + r(L) = 301.
        let net = fig1_network();
        let q = example_query();
        let (node, cost) = naive_single_node_cost(std::slice::from_ref(&q), &net);
        assert_eq!(node, n(1)); // R2
        assert_eq!(cost, 201.0);
    }

    #[test]
    fn oop_no_worse_than_naive() {
        let net = fig1_network();
        let q = example_query();
        let placement = optimal_operator_placement(&q, &net);
        let (_, naive) = naive_single_node_cost(std::slice::from_ref(&q), &net);
        assert!(placement.cost <= naive + 1e-9);
        assert!(placement.sink(&q).is_some());
        // Root + AND = two composite assignments.
        assert_eq!(placement.assignments.len(), 2);
    }

    #[test]
    fn oop_exploits_selective_inner_operator() {
        // With a highly selective AND(C, L), placing the AND at R2 and the
        // root at R1 (where F originates) beats naive evaluation: only the
        // rare AND matches travel (Fig. 1b).
        use crate::query::{CmpOp, Predicate};
        use crate::types::{AttrId, PrimId};
        let net = fig1_network();
        let pred = Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(1), AttrId(0)),
            0.001,
        );
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            vec![pred],
            1000,
        )
        .unwrap();
        let placement = optimal_operator_placement(&q, &net);
        let (_, naive) = naive_single_node_cost(std::slice::from_ref(&q), &net);
        // Delivering C and L to any AND host costs at least 200 in this
        // network, so oOP cannot beat naive here — it must match it and the
        // exhaustive search (this is exactly the paper's observation that
        // single-sink placements barely improve on centralized/naive plans
        // in complete-graph networks, §7.2).
        assert!(placement.cost <= naive + 1e-9);
        let exhaustive = exhaustive_operator_placement(&q, &net);
        assert!((placement.cost - exhaustive).abs() < 1e-6);
    }

    #[test]
    fn oop_dp_matches_exhaustive_on_small_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            // Random 3-node network over 4 types.
            let mut net = Network::new(3, 4);
            for node in 0..3u16 {
                for ty in 0..4u16 {
                    if rng.gen_bool(0.6) {
                        net.set_generates(n(node), t(ty));
                    }
                }
            }
            for ty in 0..4u16 {
                // Ensure a producer.
                if net.num_producers(t(ty)) == 0 {
                    net.set_generates(n(rng.gen_range(0..3)), t(ty));
                }
                net.set_rate(t(ty), rng.gen_range(1.0..100.0));
            }
            let q = Query::build(
                QueryId(0),
                &Pattern::seq([
                    Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                    Pattern::and([Pattern::leaf(t(2)), Pattern::leaf(t(3))]),
                ]),
                vec![],
                100,
            )
            .unwrap();
            let dp = optimal_operator_placement(&q, &net).cost;
            let ex = exhaustive_operator_placement(&q, &net);
            assert!((dp - ex).abs() < 1e-6, "dp={dp} exhaustive={ex}");
        }
    }

    #[test]
    fn placement_graph_is_correct_and_costs_match() {
        use crate::graph::PlanContext;
        use crate::projection::ProjectionTable;
        let net = fig1_network();
        let q = example_query();
        let placement = optimal_operator_placement(&q, &net);
        let mut table = ProjectionTable::new();
        let graph = placement_to_graph(&q, &placement, &net, &mut table).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &table);
        graph.check_correct(&ctx, 100_000).unwrap();
        // Exactly one sink (single-sink model).
        assert_eq!(graph.sinks().len(), 1);
        // The MuSE cost model reproduces the DP's cost on this graph.
        assert!(
            (graph.cost(&ctx) - placement.cost).abs() < 1e-6,
            "graph {} vs dp {}",
            graph.cost(&ctx),
            placement.cost
        );
    }

    #[test]
    fn workload_cost_sums_queries() {
        let net = fig1_network();
        let q0 = example_query();
        let q1 = Query::build(
            QueryId(1),
            &Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(2))]),
            vec![],
            100,
        )
        .unwrap();
        let total = optimal_operator_placement_workload(&[q0.clone(), q1.clone()], &net);
        let a = optimal_operator_placement(&q0, &net).cost;
        let b = optimal_operator_placement(&q1, &net).cost;
        // With stream sharing the workload cost is at most the per-query
        // sum (the unshared accounting), and both queries reference C and F
        // so some sharing must materialize.
        let unshared = optimal_operator_placement_workload_unshared(&[q0, q1], &net);
        assert!((unshared - (a + b)).abs() < 1e-9);
        assert!(total <= unshared + 1e-9);
        assert!(total < unshared, "related queries must share streams");
    }
}
