//! Push-pull communication for MuSE graph edges — the future-work
//! integration the paper names in §8 (Akdere et al.'s plan-based event
//! acquisition combined with multi-sink placements).
//!
//! Under pure *push*, every network edge of a MuSE graph continuously
//! streams its matches. Under *pull*, a producer buffers its matches and the
//! consumer fetches them only when a *trigger* — a rarer co-input of the
//! same join — makes a match possible. Pulling pays one request per trigger
//! match plus the in-window partners as the response, so it wins exactly
//! when the trigger's volume is far below the pulled stream's.
//!
//! With rates expressed per window unit (this repository's convention for
//! executable workloads), the expected response batch for one trigger match
//! is the pulled stream's per-window volume, giving the pulled-edge cost
//!
//! ```text
//! c_pull(e → v) = V_trig · (c_req + V_e)      vs.      c_push(e → v) = V_e
//! ```
//!
//! per target node, where `V_x = r̂(x) · |𝔄(x)|` and `c_req` is the (small)
//! request overhead. [`annotate`] picks, per join vertex, the cheapest
//! trigger and converts every other incoming network stream to pull wherever
//! that lowers the edge cost; the result is a [`PullPlan`] annotation over
//! the unchanged MuSE graph, with the achieved savings. Like the paper, the
//! execution engine keeps using push — this pass quantifies the headroom and
//! is exercised by the ablation analysis.

use crate::graph::{MuseGraph, PlanContext, Vertex};
use crate::types::NodeSet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the push-pull annotation.
#[derive(Debug, Clone)]
pub struct PushPullConfig {
    /// Cost of one pull request, in the same rate units as match volumes
    /// (a request is a tiny message; 1.0 equals one match's worth).
    pub request_cost: f64,
}

impl Default for PushPullConfig {
    fn default() -> Self {
        Self { request_cost: 1.0 }
    }
}

/// One edge converted to pull mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PulledEdge {
    /// The buffering producer.
    pub from: Vertex,
    /// The consumer issuing pull requests.
    pub to: Vertex,
    /// The trigger vertex whose matches drive the requests.
    pub trigger: Vertex,
    /// Push cost of the edge (per §4.4).
    pub push_cost: f64,
    /// Modeled pull cost (requests + responses).
    pub pull_cost: f64,
}

/// The push-pull annotation of a MuSE graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PullPlan {
    /// Edges cheaper under pull, with their trigger and both costs.
    pub pulled: Vec<PulledEdge>,
    /// Total network cost under pure push (`c(G)`).
    pub push_cost: f64,
    /// Total network cost with the pulled edges converted.
    pub hybrid_cost: f64,
}

impl PullPlan {
    /// Absolute savings of the hybrid plan over pure push.
    pub fn savings(&self) -> f64 {
        self.push_cost - self.hybrid_cost
    }

    /// Relative savings (0 when nothing was converted).
    pub fn savings_ratio(&self) -> f64 {
        if self.push_cost <= 0.0 {
            0.0
        } else {
            self.savings() / self.push_cost
        }
    }
}

/// Annotates a MuSE graph with push-pull communication modes: per join
/// vertex, the incoming network stream with the smallest volume acts as the
/// trigger, and every other incoming network stream is converted to pull
/// when that is cheaper.
///
/// The graph itself is not modified — correctness (§5.2) is untouched
/// because pull changes *when* matches travel, not *which* matches are
/// available to the join (the producer buffers one window's worth, exactly
/// the horizon the join itself would retain them for).
pub fn annotate(graph: &MuseGraph, ctx: &PlanContext<'_>, config: &PushPullConfig) -> PullPlan {
    let covers = graph.covers(ctx);
    let index: HashMap<Vertex, usize> = graph.vertices().enumerate().map(|(i, v)| (v, i)).collect();
    // Per-vertex outgoing volume V_v = r̂(p) · |𝔄(v)|.
    let volume: Vec<f64> = graph
        .vertices()
        .enumerate()
        .map(|(i, v)| ctx.rate_of(v.proj) * covers[i].count())
        .collect();

    let push_cost = graph.cost(ctx);
    let mut pulled = Vec::new();
    let mut hybrid_cost = push_cost;

    for target in graph.vertices() {
        // Incoming *network* streams of the join, grouped by producer.
        let network_preds: Vec<Vertex> = graph
            .predecessors(target)
            .into_iter()
            .filter(|p| p.node != target.node)
            .collect();
        if network_preds.len() < 2 {
            continue; // pulling needs a trigger and at least one pulled stream
        }
        // The lowest-volume predecessor triggers; break ties by vertex order
        // for determinism.
        let trigger = *network_preds
            .iter()
            .min_by(|a, b| {
                volume[index[a]]
                    .total_cmp(&volume[index[b]])
                    .then_with(|| a.cmp(b))
            })
            .expect("at least two predecessors");
        let trigger_volume = volume[index[&trigger]];

        for pred in network_preds {
            if pred == trigger {
                continue;
            }
            let i = index[&pred];
            // The push edge cost into this target node honours the
            // once-per-node sharing rule: if the producer also feeds other
            // vertices at the same node, converting this edge alone saves
            // nothing — skip those.
            let shares_stream = graph
                .successors(pred)
                .iter()
                .any(|s| *s != target && s.node == target.node);
            if shares_stream {
                continue;
            }
            let push_edge = volume[i];
            let pull_edge = trigger_volume * (config.request_cost + volume[i]);
            if pull_edge < push_edge {
                hybrid_cost -= push_edge - pull_edge;
                pulled.push(PulledEdge {
                    from: pred,
                    to: target,
                    trigger,
                    push_cost: push_edge,
                    pull_cost: pull_edge,
                });
            }
        }
    }

    PullPlan {
        pulled,
        push_cost,
        hybrid_cost,
    }
}

/// Convenience: the set of nodes whose outgoing traffic the hybrid plan
/// reduces (useful for reporting).
pub fn relieved_nodes(plan: &PullPlan) -> NodeSet {
    let mut nodes = NodeSet::empty();
    for e in &plan.pulled {
        nodes.insert(e.from.node);
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::amuse::{amuse, AMuseConfig};
    use crate::network::{Network, NetworkBuilder};
    use crate::projection::ProjectionTable;
    use crate::query::{Pattern, Query};
    use crate::types::{EventTypeId, NodeId, QueryId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// A network with one very rare trigger type and one frequent type,
    /// produced on different nodes so their streams must cross.
    fn skewed_network() -> Network {
        NetworkBuilder::new(3, 3)
            .node(n(0), [t(0)])
            .node(n(1), [t(1)])
            .node(n(2), [t(2)])
            .rate(t(0), 0.05) // rare trigger
            .rate(t(1), 50.0) // frequent
            .rate(t(2), 50.0) // frequent
            .build()
    }

    fn query() -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            100,
        )
        .unwrap()
    }

    #[test]
    fn pull_wins_for_rare_triggers_on_single_sink_plans() {
        // aMuSE plans on this instance already keep the frequent streams
        // local (multi-sink), so pull's headroom shows on the classical
        // single-sink placement, which must push one frequent stream to the
        // sink alongside the rare trigger.
        use crate::algorithms::baselines::{optimal_operator_placement, placement_to_graph};
        let net = skewed_network();
        let q = query();
        let placement = optimal_operator_placement(&q, &net);
        let mut table = ProjectionTable::new();
        let graph = placement_to_graph(&q, &placement, &net, &mut table).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &table);
        let annotated = annotate(&graph, &ctx, &PushPullConfig::default());
        assert!(
            !annotated.pulled.is_empty(),
            "a rare trigger must convert some stream to pull"
        );
        assert!(annotated.hybrid_cost < annotated.push_cost);
        assert!(annotated.savings() > 0.0);
        assert!(annotated.savings_ratio() > 0.0 && annotated.savings_ratio() < 1.0);
        // Every conversion is individually justified.
        for e in &annotated.pulled {
            assert!(e.pull_cost < e.push_cost, "{e:?}");
            assert_ne!(e.from, e.trigger);
        }
        assert!(!relieved_nodes(&annotated).is_empty());

        // The aMuSE plan needs no pulling here — it already avoids pushing
        // the frequent streams — but annotation never hurts it.
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let annotated = annotate(&plan.graph, &ctx, &PushPullConfig::default());
        assert!(annotated.hybrid_cost <= annotated.push_cost + 1e-9);
    }

    #[test]
    fn no_pull_for_balanced_rates() {
        // All rates equal and high: a trigger is as expensive as the data.
        let net = NetworkBuilder::new(3, 3)
            .node(n(0), [t(0)])
            .node(n(1), [t(1)])
            .node(n(2), [t(2)])
            .rate(t(0), 50.0)
            .rate(t(1), 50.0)
            .rate(t(2), 50.0)
            .build();
        let q = query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let annotated = annotate(&plan.graph, &ctx, &PushPullConfig::default());
        assert!(annotated.pulled.is_empty());
        assert_eq!(annotated.push_cost, annotated.hybrid_cost);
        assert_eq!(annotated.savings(), 0.0);
    }

    #[test]
    fn request_cost_disables_marginal_pulls() {
        let net = skewed_network();
        let q = query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let cheap = annotate(&plan.graph, &ctx, &PushPullConfig { request_cost: 0.0 });
        let expensive = annotate(&plan.graph, &ctx, &PushPullConfig { request_cost: 1e9 });
        assert!(cheap.savings() >= expensive.savings());
        assert!(expensive.pulled.is_empty());
    }

    #[test]
    fn annotation_never_increases_cost() {
        // Property over a few generated instances.
        use muse_sim_like::*;
        mod muse_sim_like {
            // Tiny local generator to avoid a circular dev-dependency.
            use super::*;
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            pub fn random_net(seed: u64) -> Network {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut net = Network::new(4, 4);
                for node in 0..4u16 {
                    for ty in 0..4u16 {
                        if rng.gen_bool(0.6) {
                            net.set_generates(NodeId(node), EventTypeId(ty));
                        }
                    }
                }
                for ty in 0..4u16 {
                    if net.num_producers(EventTypeId(ty)) == 0 {
                        net.set_generates(NodeId(rng.gen_range(0..4)), EventTypeId(ty));
                    }
                    net.set_rate(EventTypeId(ty), rng.gen_range(0.01..100.0));
                }
                net
            }
        }
        for seed in 0..8 {
            let net = random_net(seed);
            let q = Query::build(
                QueryId(0),
                &Pattern::seq([
                    Pattern::leaf(t(0)),
                    Pattern::leaf(t(1)),
                    Pattern::leaf(t(2)),
                ]),
                vec![],
                100,
            )
            .unwrap();
            let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
            let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
            let annotated = annotate(&plan.graph, &ctx, &PushPullConfig::default());
            assert!(
                annotated.hybrid_cost <= annotated.push_cost + 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn placement_graph_annotation() {
        // Push-pull also applies to classical single-sink plans.
        use crate::algorithms::baselines::{optimal_operator_placement, placement_to_graph};
        let net = skewed_network();
        let q = query();
        let placement = optimal_operator_placement(&q, &net);
        let mut table = ProjectionTable::new();
        let graph = placement_to_graph(&q, &placement, &net, &mut table).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &table);
        let annotated = annotate(&graph, &ctx, &PushPullConfig::default());
        assert!(annotated.push_cost > 0.0);
        assert!(annotated.hybrid_cost <= annotated.push_cost);
    }
}
