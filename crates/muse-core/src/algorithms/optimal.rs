//! Exhaustive optimal MuSE graph construction (Alg. 1 / §5.3 of the paper).
//!
//! The full optimum is NP-hard (Theorem 1) and the paper's own
//! branch-and-bound implementation needs ~24 h even on four-node instances,
//! so — like the paper — this module is used for validation on *tiny*
//! instances only. The search space follows the `G^uni` restriction of
//! §6.1.2 (one underlying combination; every event type binding generated
//! with the same combination) with one placement per projection, which is
//! exactly the class aMuSE approximates:
//!
//! 1. enumerate every correct, non-redundant combination *hierarchy* (a
//!    combination for the query and, recursively, for every non-primitive
//!    projection it uses — shared projections get a single combination);
//! 2. for every hierarchy, enumerate placements per projection: any single
//!    node, or a partitioning multi-sink placement on any predecessor;
//! 3. assemble each configuration into a MuSE graph, compute its cost
//!    (§4.4), and keep the cheapest. A branch-and-bound cut prunes partial
//!    configurations whose accumulated cost already exceeds the incumbent.

use crate::combination::{enumerate_combinations, Combination};
use crate::error::{ModelError, Result};
use crate::graph::{MuseGraph, PlanContext, Vertex};
use crate::network::Network;
use crate::projection::{is_negation_closed, ProjectionTable};
use crate::query::Query;
use crate::types::{NodeId, PrimSet};
use std::collections::{BTreeSet, HashMap};

/// Guard rails for the exhaustive search.
#[derive(Debug, Clone)]
pub struct OptimalConfig {
    /// Maximum primitive operators of the query (default 4).
    pub max_prims: usize,
    /// Maximum network size (default 5).
    pub max_nodes: usize,
}

impl Default for OptimalConfig {
    fn default() -> Self {
        Self {
            max_prims: 4,
            max_nodes: 5,
        }
    }
}

/// The result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct OptimalPlan {
    /// The cheapest graph found.
    pub graph: MuseGraph,
    /// Its sinks.
    pub sinks: Vec<Vertex>,
    /// Projection arena.
    pub table: ProjectionTable,
    /// Network cost.
    pub cost: f64,
    /// Number of complete configurations evaluated.
    pub configurations: u64,
}

/// Exhaustively constructs an optimal MuSE graph (within `G^uni`, one
/// placement per projection).
///
/// # Errors
///
/// Fails on instances beyond the configured guard rails, on duplicate
/// primitive event types, or on producerless types.
pub fn optimal_muse_graph(
    query: &Query,
    network: &Network,
    config: &OptimalConfig,
) -> Result<OptimalPlan> {
    if query.num_prims() > config.max_prims || network.num_nodes() > config.max_nodes {
        return Err(ModelError::UnsupportedInput(format!(
            "exhaustive search limited to {} prims / {} nodes",
            config.max_prims, config.max_nodes
        )));
    }
    if !query.has_distinct_prim_types() {
        return Err(ModelError::UnsupportedInput(
            "optimal construction requires distinct event types per primitive".to_string(),
        ));
    }
    network.check_producible(query.types())?;

    let full = query.prims();
    let mut table = ProjectionTable::new();
    // All negation-closed projections.
    let mut all: Vec<PrimSet> = full
        .subsets()
        .filter(|s| is_negation_closed(query, *s))
        .collect();
    all.sort();
    for &s in &all {
        table.project_into(query, s)?;
    }

    let mut combos: HashMap<PrimSet, Vec<Combination>> = HashMap::new();
    for &s in &all {
        if s.len() >= 2 {
            let available: Vec<PrimSet> = all
                .iter()
                .copied()
                .filter(|o| o.len() >= 2 && o.is_proper_subset(s))
                .collect();
            combos.insert(s, enumerate_combinations(s, &available));
        }
    }

    let mut search = Search {
        query,
        network,
        table: &table,
        combos: &combos,
        best: None,
        configurations: 0,
    };

    if full.len() == 1 {
        // Single-primitive query: the plan is its producers.
        let prim = full.iter().next().unwrap();
        let proj = table.id_of(query.id(), full).unwrap();
        let mut graph = MuseGraph::new();
        let mut sinks = Vec::new();
        for node in network.producers(query.prim_type(prim)).iter() {
            let v = Vertex::new(proj, node);
            graph.add_vertex(v);
            sinks.push(v);
        }
        return Ok(OptimalPlan {
            graph,
            sinks,
            table,
            cost: 0.0,
            configurations: 1,
        });
    }

    let mut assigned: HashMap<PrimSet, Combination> = HashMap::new();
    search.choose_combinations(&mut assigned, vec![full]);

    let configurations = search.configurations;
    let (graph, sinks, cost) = search
        .best
        .take()
        .ok_or_else(|| ModelError::UnsupportedInput("no configuration constructed".to_string()))?;
    drop(search);
    Ok(OptimalPlan {
        graph,
        sinks,
        table,
        cost,
        configurations,
    })
}

struct Search<'a> {
    query: &'a Query,
    network: &'a Network,
    table: &'a ProjectionTable,
    combos: &'a HashMap<PrimSet, Vec<Combination>>,
    best: Option<(MuseGraph, Vec<Vertex>, f64)>,
    configurations: u64,
}

#[derive(Debug, Clone)]
struct SubPlan {
    graph: MuseGraph,
    sinks: Vec<Vertex>,
}

impl Search<'_> {
    fn ctx(&self) -> PlanContext<'_> {
        PlanContext::new(std::slice::from_ref(self.query), self.network, self.table)
    }

    /// Recursively assigns one combination to every used non-primitive
    /// projection (largest first, so shared predecessors are assigned once).
    fn choose_combinations(
        &mut self,
        assigned: &mut HashMap<PrimSet, Combination>,
        mut pending: Vec<PrimSet>,
    ) {
        // Take the largest pending projection not yet assigned.
        pending.sort_by_key(|s| (s.len(), *s));
        let p = loop {
            match pending.pop() {
                None => {
                    // All combinations fixed: enumerate placements
                    // bottom-up over the used projections.
                    let mut order: Vec<PrimSet> = assigned.keys().copied().collect();
                    order.sort_by_key(|s| (s.len(), *s));
                    let mut plans: HashMap<PrimSet, SubPlan> = HashMap::new();
                    self.place_all(assigned, &order, 0, &mut plans);
                    return;
                }
                Some(p) if assigned.contains_key(&p) || p.len() < 2 => continue,
                Some(p) => break p,
            }
        };
        let combo_list = self.combos[&p].clone();
        for combo in &combo_list {
            assigned.insert(p, combo.clone());
            let mut next = pending.clone();
            next.push(p); // re-visit to detect "already assigned" and pop others
            next.extend(combo.predecessors.iter().copied().filter(|e| e.len() >= 2));
            self.choose_combinations(assigned, next);
            assigned.remove(&p);
        }
    }

    /// Recursively places every used projection; `order` is ascending by
    /// primitive count so predecessors are placed before dependents.
    fn place_all(
        &mut self,
        assigned: &HashMap<PrimSet, Combination>,
        order: &[PrimSet],
        idx: usize,
        plans: &mut HashMap<PrimSet, SubPlan>,
    ) {
        if idx == order.len() {
            self.finish(assigned, plans);
            return;
        }
        let p = order[idx];
        let combo = &assigned[&p];
        // Placement options: any single node, or partitioning multi-sink on
        // any predecessor.
        for node in self.network.nodes() {
            if let Some(plan) = self.assemble(p, combo, Placement::Single(node), plans) {
                plans.insert(p, plan);
                self.place_all(assigned, order, idx + 1, plans);
                plans.remove(&p);
            }
        }
        for &e in &combo.predecessors {
            if let Some(plan) = self.assemble(p, combo, Placement::Partition(e), plans) {
                plans.insert(p, plan);
                self.place_all(assigned, order, idx + 1, plans);
                plans.remove(&p);
            }
        }
    }

    /// Builds the sub-plan of `p` under the given placement, pulling each
    /// predecessor's fixed sub-plan from `plans`.
    fn assemble(
        &mut self,
        p: PrimSet,
        combo: &Combination,
        placement: Placement,
        plans: &HashMap<PrimSet, SubPlan>,
    ) -> Option<SubPlan> {
        let proj = self.table.id_of(self.query.id(), p).expect("interned");
        let pred_plan = |e: PrimSet| -> Option<SubPlan> {
            if e.len() == 1 {
                let prim = e.iter().next().unwrap();
                let pid = self.table.id_of(self.query.id(), e).expect("interned");
                let mut g = MuseGraph::new();
                let mut sinks = Vec::new();
                for node in self.network.producers(self.query.prim_type(prim)).iter() {
                    let v = Vertex::new(pid, node);
                    g.add_vertex(v);
                    sinks.push(v);
                }
                Some(SubPlan { graph: g, sinks })
            } else {
                plans.get(&e).cloned()
            }
        };

        let (nodes, anchor): (BTreeSet<NodeId>, Option<PrimSet>) = match placement {
            Placement::Single(n) => ([n].into_iter().collect(), None),
            Placement::Partition(e) => {
                let ep = pred_plan(e)?;
                (ep.sinks.iter().map(|v| v.node).collect(), Some(e))
            }
        };

        let mut graph = MuseGraph::new();
        let sinks: Vec<Vertex> = nodes.iter().map(|&n| Vertex::new(proj, n)).collect();
        for &s in &sinks {
            graph.add_vertex(s);
        }
        for &e in &combo.predecessors {
            let ep = pred_plan(e)?;
            graph.union_with(&ep.graph);
            if anchor == Some(e) {
                // Partitioning input: local edges only.
                for &s in &ep.sinks {
                    for &t in &sinks {
                        if t.node == s.node {
                            graph.add_edge(s, t);
                        }
                    }
                }
            } else {
                for &s in &ep.sinks {
                    for &t in &sinks {
                        graph.add_edge(s, t);
                    }
                }
            }
        }

        // Branch-and-bound: drop partial plans already above the incumbent.
        if let Some((_, _, best)) = &self.best {
            let ctx = self.ctx();
            if graph.cost(&ctx) >= *best {
                return None;
            }
        }
        Some(SubPlan { graph, sinks })
    }

    /// Evaluates a complete configuration.
    fn finish(
        &mut self,
        assigned: &HashMap<PrimSet, Combination>,
        plans: &HashMap<PrimSet, SubPlan>,
    ) {
        let _ = assigned;
        let full = self.query.prims();
        let Some(plan) = plans.get(&full) else {
            return;
        };
        self.configurations += 1;
        let ctx = self.ctx();
        let cost = plan.graph.cost(&ctx);
        if self.best.as_ref().is_none_or(|(_, _, b)| cost < *b) {
            self.best = Some((plan.graph.clone(), plan.sinks.clone(), cost));
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Placement {
    Single(NodeId),
    Partition(PrimSet),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::amuse::{amuse, AMuseConfig};
    use crate::algorithms::baselines::{centralized_cost, optimal_operator_placement};
    use crate::network::NetworkBuilder;
    use crate::query::{CmpOp, Pattern, Predicate};
    use crate::types::{AttrId, EventTypeId, PrimId, QueryId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn small_network() -> Network {
        NetworkBuilder::new(3, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .rate(t(0), 100.0)
            .rate(t(1), 100.0)
            .rate(t(2), 1.0)
            .build()
    }

    fn robots_query(selectivity: f64) -> Query {
        let preds = if selectivity < 1.0 {
            vec![Predicate::binary(
                (PrimId(0), AttrId(0)),
                CmpOp::Eq,
                (PrimId(1), AttrId(0)),
                selectivity,
            )]
        } else {
            vec![]
        };
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            preds,
            1000,
        )
        .unwrap()
    }

    #[test]
    fn optimal_result_is_correct_graph() {
        let net = small_network();
        let q = robots_query(0.05);
        let plan = optimal_muse_graph(&q, &net, &OptimalConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        plan.graph.check_correct(&ctx, 100_000).unwrap();
        assert!(plan.configurations > 0);
    }

    #[test]
    fn optimal_no_worse_than_baselines() {
        let net = small_network();
        for sel in [1.0, 0.2, 0.05] {
            let q = robots_query(sel);
            let plan = optimal_muse_graph(&q, &net, &OptimalConfig::default()).unwrap();
            let central = centralized_cost(std::slice::from_ref(&q), &net);
            let oop = optimal_operator_placement(&q, &net).cost;
            assert!(plan.cost <= central + 1e-9, "sel={sel}");
            assert!(plan.cost <= oop + 1e-9, "sel={sel}");
        }
    }

    #[test]
    fn amuse_close_to_optimal_on_small_instances() {
        let net = small_network();
        for sel in [1.0, 0.2, 0.05] {
            let q = robots_query(sel);
            let opt = optimal_muse_graph(&q, &net, &OptimalConfig::default()).unwrap();
            let heuristic = amuse(&q, &net, &AMuseConfig::default()).unwrap();
            // aMuSE never beats the exhaustive optimum and stays within a
            // small factor on these instances.
            assert!(
                opt.cost <= heuristic.cost + 1e-9,
                "sel={sel}: optimal {} > aMuSE {}",
                opt.cost,
                heuristic.cost
            );
            assert!(
                heuristic.cost <= opt.cost * 3.0 + 1e-9,
                "sel={sel}: aMuSE {} ≫ optimal {}",
                heuristic.cost,
                opt.cost
            );
        }
    }

    #[test]
    fn guard_rails_enforced() {
        let net = NetworkBuilder::new(6, 1).build();
        let q = Query::build(QueryId(0), &Pattern::leaf(t(0)), vec![], 10).unwrap();
        assert!(matches!(
            optimal_muse_graph(&q, &net, &OptimalConfig::default()),
            Err(ModelError::UnsupportedInput(_))
        ));
    }

    #[test]
    fn single_prim_query_trivial_plan() {
        let net = small_network();
        let q = Query::build(QueryId(0), &Pattern::leaf(t(0)), vec![], 10).unwrap();
        let plan = optimal_muse_graph(&q, &net, &OptimalConfig::default()).unwrap();
        assert_eq!(plan.cost, 0.0);
        assert_eq!(plan.sinks.len(), 2); // two C producers
    }
}
