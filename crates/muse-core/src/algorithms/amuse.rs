//! The `aMuSE` and `aMuSE*` approximation algorithms for MuSE graph
//! construction (§6.2, Alg. 2 + Alg. 3 of the paper).
//!
//! `aMuSE` proceeds in two phases:
//!
//! 1. **Enumeration** (Alg. 2): enumerate the *beneficial* projections of
//!    the query (Def. 13 checked on the primitive combination) and, per
//!    projection, all correct non-redundant combinations built from them.
//! 2. **Construction** (Alg. 3): bottom-up dynamic programming over
//!    projections sorted by primitive count. For each projection and
//!    combination, candidate placements are derived per *placement option*
//!    (a primitive operator of a predecessor): a partitioning multi-sink
//!    placement when Eq. 6 admits one, otherwise single-sink placements at
//!    nodes generating a predecessor. Per placement option only the
//!    cheapest graph survives.
//!
//! `aMuSE*` restricts the search further: a projection is only considered
//! if one of its input primitives has a rate at least as high as the
//! projection's full output volume, and single-sink placements only anchor
//! at predecessors passing the same filter. It explores fewer projections,
//! combinations, and placements, trading plan quality for construction
//! speed (§7.2 quantifies the gap).

use crate::binding::num_bindings;
use crate::combination::{enumerate_combinations_limited, Combination};
use crate::error::{ModelError, Result};
use crate::graph::{MuseGraph, PlanContext, SharedTransmissions, Vertex};
use crate::network::Network;
use crate::projection::{is_negation_closed, ProjectionTable};
use crate::query::Query;
use crate::types::{NodeId, PrimId, PrimSet};
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Configuration of the aMuSE construction.
#[derive(Debug, Clone)]
pub struct AMuseConfig {
    /// Enable the aMuSE* restrictions (§6.2).
    pub star: bool,
    /// Cap on the number of combinations explored per projection; the
    /// deterministic enumeration order makes truncation reproducible.
    pub max_combinations: usize,
    /// Cap on the candidate predecessor pool per target projection: when a
    /// target has more beneficial sub-projections than this, only the ones
    /// with the cheapest output volume (rate × bindings) are considered.
    pub max_predecessor_candidates: usize,
    /// Ablation switch: disable partitioning multi-sink placements and fall
    /// back to single-sink placements everywhere (used to quantify the
    /// contribution of multi-sink evaluation).
    pub disable_multi_sink: bool,
}

impl Default for AMuseConfig {
    fn default() -> Self {
        Self {
            star: false,
            max_combinations: 500,
            max_predecessor_candidates: 12,
            disable_multi_sink: false,
        }
    }
}

impl AMuseConfig {
    /// The configuration of the `aMuSE*` variant.
    pub fn star() -> Self {
        Self {
            star: true,
            ..Self::default()
        }
    }
}

/// Statistics of one construction run (reported in Fig. 7d of the paper).
#[derive(Debug, Clone, Default)]
pub struct ConstructionStats {
    /// Total projections of the query (`2^|O_p|− 1`).
    pub projections_total: usize,
    /// Projections surviving the beneficial (+ star) filters.
    pub projections_beneficial: usize,
    /// Combinations explored across all projections.
    pub combinations: usize,
    /// Candidate graphs whose cost was evaluated.
    pub graphs_evaluated: usize,
    /// Wall-clock construction time.
    pub elapsed: Duration,
}

/// The result of a MuSE graph construction for a single query.
#[derive(Debug, Clone)]
pub struct MusePlan {
    /// The constructed evaluation plan.
    pub graph: MuseGraph,
    /// The sink vertices (placements of the full query).
    pub sinks: Vec<Vertex>,
    /// Projection arena referenced by the graph's vertices.
    pub table: ProjectionTable,
    /// Network cost `c(G)` of the plan.
    pub cost: f64,
    /// Construction statistics.
    pub stats: ConstructionStats,
}

impl MusePlan {
    /// Network cost `c(G)` of the plan.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Returns `true` if the plan has more than one sink.
    pub fn is_multi_sink(&self) -> bool {
        self.sinks.len() > 1
    }
}

/// Runs `aMuSE` on a single query.
///
/// # Errors
///
/// Fails if the query's primitive operators do not reference distinct event
/// types (required by §6), or if a referenced type has no producer.
pub fn amuse(query: &Query, network: &Network, config: &AMuseConfig) -> Result<MusePlan> {
    let mut table = ProjectionTable::new();
    let (graph, sinks, cost, stats) = amuse_with_table(
        query,
        std::slice::from_ref(query),
        network,
        config,
        &mut table,
        None,
    )?;
    Ok(MusePlan {
        graph,
        sinks,
        table,
        cost,
        stats,
    })
}

/// Runs `aMuSE*` on a single query.
pub fn amuse_star(query: &Query, network: &Network, config: &AMuseConfig) -> Result<MusePlan> {
    let config = AMuseConfig {
        star: true,
        ..config.clone()
    };
    amuse(query, network, &config)
}

/// A partially constructed plan: a graph whose sinks host one projection.
#[derive(Debug, Clone)]
pub(crate) struct SubPlan {
    pub(crate) graph: MuseGraph,
    pub(crate) sinks: Vec<Vertex>,
    pub(crate) cost: f64,
    /// `|𝔄(v)|` per sink, parallel to `sinks` (memoized for the additive
    /// attachment estimates of the construction phase).
    pub(crate) sink_counts: Vec<f64>,
}

/// Core of aMuSE, reusable by the multi-query extension: constructs a plan
/// for `query` with projections interned into `table`; `workload` must
/// contain every query whose projections may appear (for rate lookups), and
/// `shared` enables zero-cost reuse of already-established streams.
pub(crate) fn amuse_with_table(
    query: &Query,
    workload: &[Query],
    network: &Network,
    config: &AMuseConfig,
    table: &mut ProjectionTable,
    shared: Option<&SharedTransmissions>,
) -> Result<(MuseGraph, Vec<Vertex>, f64, ConstructionStats)> {
    let start = Instant::now();
    if !query.has_distinct_prim_types() {
        return Err(ModelError::UnsupportedInput(
            "aMuSE requires distinct event types per primitive operator (§6)".to_string(),
        ));
    }
    network.check_producible(query.types())?;

    let mut stats = ConstructionStats::default();
    let full = query.prims();
    stats.projections_total = (1usize << query.num_prims()) - 1;

    // ----- Enumeration phase (Alg. 2) -----
    let mut beneficial: Vec<PrimSet> = Vec::new();
    for s in full.subsets() {
        if s.len() < 2 || s == full || !is_negation_closed(query, s) {
            continue;
        }
        if !super::pruning::is_beneficial(query, s, network)? {
            continue;
        }
        if config.star && !super::pruning::passes_star_filter(query, s, network)? {
            continue;
        }
        beneficial.push(s);
    }
    beneficial.sort();
    stats.projections_beneficial = beneficial.len();

    // Intern all projections up front so the table can be borrowed immutably
    // during construction.
    for prim in full.iter() {
        table.project_into(query, PrimSet::single(prim))?;
    }
    for &s in &beneficial {
        table.project_into(query, s)?;
    }
    table.project_into(query, full)?;

    // Precomputed statistics: output rate and binding count per prim set
    // (every set the construction touches), plus rates per projection id
    // for the cost evaluations.
    let mut set_stats: HashMap<PrimSet, (f64, f64)> = HashMap::new();
    {
        let mut all_sets: Vec<PrimSet> = full.iter().map(PrimSet::single).collect();
        all_sets.extend(beneficial.iter().copied());
        all_sets.push(full);
        for s in all_sets {
            let rate = super::pruning::projection_rate(query, s, network)?;
            set_stats.insert(s, (rate, num_bindings(query, s, network)));
        }
    }

    // Combinations per target, in ascending prim-count order.
    let mut targets: Vec<PrimSet> = beneficial.clone();
    if full.len() >= 2 {
        targets.push(full);
    }
    targets.sort_by_key(|s| (s.len(), *s));
    let mut combos: HashMap<PrimSet, Vec<Combination>> = HashMap::new();
    for &target in &targets {
        let mut available: Vec<PrimSet> = beneficial
            .iter()
            .copied()
            .filter(|s| s.is_proper_subset(target))
            .collect();
        // For large targets the candidate pool itself is pruned to the
        // predecessors with the cheapest total output volume (rate ×
        // bindings) — those dominate good combinations — so the cover
        // search explores quality, not sheer bulk.
        if available.len() > config.max_predecessor_candidates {
            available.sort_by(|a, b| {
                let va = set_stats[a].0 * set_stats[a].1;
                let vb = set_stats[b].0 * set_stats[b].1;
                va.total_cmp(&vb).then(a.cmp(b))
            });
            available.truncate(config.max_predecessor_candidates);
            available.sort();
        }
        let list = enumerate_combinations_limited(target, &available, config.max_combinations);
        stats.combinations += list.len();
        combos.insert(target, list);
    }
    let rates_by_id: Vec<f64> = table
        .iter()
        .map(|(_, p)| {
            let q = workload
                .iter()
                .find(|q| q.id() == p.source)
                .expect("source query in workload");
            crate::cost::projection_output_rate(p, q, network)
        })
        .collect();

    // ----- Construction phase (Alg. 3) -----
    // plans[(projection prims, placement option)] = cheapest sub-plan.
    let mut plans: HashMap<(PrimSet, PrimId), SubPlan> = HashMap::new();

    // Primitive projections: one vertex per producing node, no edges.
    for prim in full.iter() {
        let proj = table
            .id_of(query.id(), PrimSet::single(prim))
            .expect("primitive projection interned");
        let mut graph = MuseGraph::new();
        let mut sinks = Vec::new();
        for node in network.producers(query.prim_type(prim)).iter() {
            let v = Vertex::new(proj, node);
            graph.add_vertex(v);
            sinks.push(v);
        }
        let sink_counts = vec![1.0; sinks.len()];
        plans.insert(
            (PrimSet::single(prim), prim),
            SubPlan {
                graph,
                sinks,
                cost: 0.0,
                sink_counts,
            },
        );
    }

    let ctx_base = PlanContext::new(workload, network, table).with_rates(&rates_by_id);
    let ctx = match shared {
        Some(s) => ctx_base.with_shared(s),
        None => ctx_base,
    };

    for &target in &targets {
        let (target_rate, target_bindings) = set_stats[&target];
        let target_volume = target_rate * target_bindings;
        for combo in &combos[&target] {
            let part = if config.disable_multi_sink {
                None
            } else {
                let triples: Vec<(PrimSet, f64, f64)> = combo
                    .predecessors
                    .iter()
                    .map(|e| {
                        let (r, b) = set_stats[e];
                        (*e, r, b)
                    })
                    .collect();
                super::pruning::partitioning_input_from_rates(&triples)
            };
            if let Some(e_part) = part {
                // Partitioning multi-sink placement: host the target at
                // every node generating the partitioning input.
                for po in e_part.iter() {
                    let Some(pred_plan) = plans.get(&(e_part, po)) else {
                        continue;
                    };
                    let nodes: BTreeSet<NodeId> = pred_plan.sinks.iter().map(|v| v.node).collect();
                    let cand = construct_subgraph(
                        query, target, combo, e_part, po, &nodes, &plans, &ctx, table, &set_stats,
                        &mut stats,
                    )?;
                    keep_min(&mut plans, (target, po), cand);
                }
            } else {
                // Single-sink placements anchored at each predecessor.
                let mut anchors: Vec<PrimSet> = combo.predecessors.clone();
                if config.star {
                    let filtered: Vec<PrimSet> = anchors
                        .iter()
                        .copied()
                        .filter(|e| set_stats[e].0 >= target_volume)
                        .collect();
                    if !filtered.is_empty() {
                        anchors = filtered;
                    }
                }
                // For a single-sink placement the anchor only determines the
                // candidate node — identical (combination, node) pairs yield
                // identical graphs, so each node's graph is built once per
                // combination and reused for every placement-option key.
                let mut built: Vec<(NodeId, SubPlan)> = Vec::new();
                for e in anchors {
                    for po in e.iter() {
                        let Some(pred_plan) = plans.get(&(e, po)) else {
                            continue;
                        };
                        let node =
                            choose_single_sink_node(&pred_plan.sinks, query, target, network);
                        let idx = match built.iter().position(|(n, _)| *n == node) {
                            Some(idx) => idx,
                            None => {
                                let nodes: BTreeSet<NodeId> = [node].into_iter().collect();
                                let cand = construct_subgraph(
                                    query, target, combo, e, po, &nodes, &plans, &ctx, table,
                                    &set_stats, &mut stats,
                                )?;
                                built.push((node, cand));
                                built.len() - 1
                            }
                        };
                        keep_min_ref(&mut plans, (target, po), &built[idx].1);
                    }
                }
            }
        }
    }

    // Final answer: cheapest plan for the full query over all placement
    // options (Alg. 3 line 17). Single-primitive queries are served by
    // their primitive placement directly.
    let best = full
        .iter()
        .filter_map(|po| plans.get(&(full, po)))
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .ok_or_else(|| {
            ModelError::UnsupportedInput("no placement constructed for the query".to_string())
        })?
        .clone();

    stats.elapsed = start.elapsed();
    Ok((best.graph, best.sinks, best.cost, stats))
}

/// Inserts `cand` under `key` if it is cheaper than the incumbent.
fn keep_min(
    plans: &mut HashMap<(PrimSet, PrimId), SubPlan>,
    key: (PrimSet, PrimId),
    cand: SubPlan,
) {
    match plans.get(&key) {
        Some(existing) if existing.cost <= cand.cost => {}
        _ => {
            plans.insert(key, cand);
        }
    }
}

/// [`keep_min`] over a borrowed candidate, cloning only on improvement.
fn keep_min_ref(
    plans: &mut HashMap<(PrimSet, PrimId), SubPlan>,
    key: (PrimSet, PrimId),
    cand: &SubPlan,
) {
    match plans.get(&key) {
        Some(existing) if existing.cost <= cand.cost => {}
        _ => {
            plans.insert(key, cand.clone());
        }
    }
}

/// Chooses the node for a single-sink placement among the sink nodes of the
/// anchor predecessor's plan: the node generating the most event types of
/// the target projection (favoring local edges), ties broken by node id.
fn choose_single_sink_node(
    anchor_sinks: &[Vertex],
    query: &Query,
    target: PrimSet,
    network: &Network,
) -> NodeId {
    let types = query.types_of(target);
    anchor_sinks
        .iter()
        .map(|v| v.node)
        .max_by_key(|n| {
            let local = types.iter().filter(|ty| network.generates(*n, *ty)).count();
            (local, std::cmp::Reverse(n.0))
        })
        .expect("anchor plan has sinks")
}

/// Builds the MuSE graph hosting `target` at `nodes`, anchored on
/// `anchor` (placement option `po`); remaining predecessors of the
/// combination contribute their cheapest placement-option sub-plan
/// (`ConstructSubgraph` of Alg. 3).
///
/// The placement option of each remaining predecessor is chosen by an
/// additive estimate — the predecessor plan's own cost plus the rate of its
/// sink streams into the target's sink nodes — instead of evaluating the
/// full union graph per option; only the chosen assembly is costed exactly.
/// The estimate ignores stream sharing between sub-plans, a deliberate
/// constant-factor approximation that keeps construction fast (§6.2 bounds
/// the phase by `O(|Π_ben|·|𝔠(q)|·|O_p|⁴)`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn construct_subgraph(
    query: &Query,
    target: PrimSet,
    combo: &Combination,
    anchor: PrimSet,
    po: PrimId,
    nodes: &BTreeSet<NodeId>,
    plans: &HashMap<(PrimSet, PrimId), SubPlan>,
    ctx: &PlanContext<'_>,
    table: &ProjectionTable,
    set_stats: &HashMap<PrimSet, (f64, f64)>,
    stats: &mut ConstructionStats,
) -> Result<SubPlan> {
    let target_proj = table
        .id_of(query.id(), target)
        .expect("target projection interned");
    let anchor_plan = &plans[&(anchor, po)];

    let mut graph = MuseGraph::new();
    let sinks: Vec<Vertex> = nodes.iter().map(|&n| Vertex::new(target_proj, n)).collect();
    for &s in &sinks {
        graph.add_vertex(s);
    }
    graph.union_with(&anchor_plan.graph);
    if sinks.len() == 1 {
        for &s in &anchor_plan.sinks {
            graph.add_edge(s, sinks[0]);
        }
    } else {
        // Multi-sink: the anchor's matches stay local — connect same-node
        // pairs only (the partitioning input never crosses the network).
        for &s in &anchor_plan.sinks {
            for &t in &sinks {
                if t.node == s.node {
                    graph.add_edge(s, t);
                }
            }
        }
    }

    // Attach each remaining predecessor with its cheapest placement option
    // per the additive estimate.
    for &e in combo.predecessors.iter().filter(|&&e| e != anchor) {
        let e_rate = set_stats.get(&e).map(|(r, _)| *r).unwrap_or(0.0);
        let mut best: Option<(PrimId, f64)> = None;
        for po_e in e.iter() {
            let Some(pred_plan) = plans.get(&(e, po_e)) else {
                continue;
            };
            let mut attach = 0.0;
            for (v, count) in pred_plan.sinks.iter().zip(&pred_plan.sink_counts) {
                let remote_targets = nodes.len() - usize::from(nodes.contains(&v.node));
                attach += e_rate * count * remote_targets as f64;
            }
            let estimate = pred_plan.cost + attach;
            if best.is_none_or(|(_, c)| estimate < c) {
                best = Some((po_e, estimate));
            }
        }
        let (po_e, _) = best.ok_or_else(|| {
            ModelError::UnsupportedInput(format!(
                "no placement available for predecessor projection {e:?}"
            ))
        })?;
        let pred_plan = &plans[&(e, po_e)];
        graph.union_with(&pred_plan.graph);
        for &s in &pred_plan.sinks {
            for &t in &sinks {
                graph_add_edge_checked(&mut graph, s, t);
            }
        }
    }

    let cost = graph.cost(ctx);
    stats.graphs_evaluated += 1;
    let counts = graph.cover_counts(ctx);
    let sink_counts = sinks
        .iter()
        .map(|s| graph.index_of(*s).map(|i| counts[i]).unwrap_or(0.0))
        .collect();
    Ok(SubPlan {
        graph,
        sinks,
        cost,
        sink_counts,
    })
}

/// Adds an edge unless it would be a self-loop (a predecessor plan may
/// already contain the target vertex after unions; never the case in
/// practice, but cheap to guard).
fn graph_add_edge_checked(graph: &mut MuseGraph, from: Vertex, to: Vertex) {
    if from != to {
        graph.add_edge(from, to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baselines::{centralized_cost, optimal_operator_placement};
    use crate::network::NetworkBuilder;
    use crate::query::{CmpOp, Pattern, Predicate};
    use crate::types::{AttrId, EventTypeId, QueryId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// Fig. 1 network: R1 = {C, F}, R2 = {C, L}, R3 = {L}; camera and lidar
    /// frequent, floor clearance rare.
    fn fig1_network() -> Network {
        NetworkBuilder::new(3, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .rate(t(0), 100.0)
            .rate(t(1), 100.0)
            .rate(t(2), 1.0)
            .build()
    }

    fn robots_query(selectivity: f64) -> Query {
        let preds = if selectivity < 1.0 {
            vec![Predicate::binary(
                (PrimId(0), AttrId(0)),
                CmpOp::Eq,
                (PrimId(1), AttrId(0)),
                selectivity,
            )]
        } else {
            vec![]
        };
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            preds,
            1000,
        )
        .unwrap()
    }

    fn plan_ctx<'a>(
        query: &'a Query,
        network: &'a Network,
        table: &'a ProjectionTable,
    ) -> PlanContext<'a> {
        PlanContext::new(std::slice::from_ref(query), network, table)
    }

    #[test]
    fn produces_correct_plan_for_robots() {
        let net = fig1_network();
        let q = robots_query(0.01);
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = plan_ctx(&q, &net, &plan.table);
        plan.graph.check_correct(&ctx, 100_000).unwrap();
        assert!(!plan.sinks.is_empty());
        // Reported cost is consistent with the graph.
        assert!((plan.graph.cost(&ctx) - plan.cost).abs() < 1e-9);
    }

    #[test]
    fn beats_baselines_on_selective_query() {
        let net = fig1_network();
        let q = robots_query(0.01);
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let central = centralized_cost(std::slice::from_ref(&q), &net);
        let oop = optimal_operator_placement(&q, &net).cost;
        assert!(plan.cost < central, "{} !< {central}", plan.cost);
        assert!(plan.cost <= oop + 1e-9, "{} !<= {oop}", plan.cost);
    }

    #[test]
    fn star_never_beats_amuse() {
        let net = fig1_network();
        for sel in [1.0, 0.2, 0.05, 0.01] {
            let q = robots_query(sel);
            let full = amuse(&q, &net, &AMuseConfig::default()).unwrap();
            let star = amuse_star(&q, &net, &AMuseConfig::default()).unwrap();
            assert!(
                full.cost <= star.cost + 1e-9,
                "sel={sel}: aMuSE {} > aMuSE* {}",
                full.cost,
                star.cost
            );
        }
    }

    #[test]
    fn star_explores_fewer_projections() {
        let net = fig1_network();
        let q = robots_query(0.05);
        let full = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let star = amuse_star(&q, &net, &AMuseConfig::default()).unwrap();
        assert!(star.stats.projections_beneficial <= full.stats.projections_beneficial);
        assert!(star.stats.graphs_evaluated <= full.stats.graphs_evaluated);
    }

    #[test]
    fn multi_sink_emerges_for_dominant_type() {
        // All nodes produce the frequent type C; the rare types X, Y are
        // produced by single nodes. A partitioning multi-sink placement on C
        // should host the query at every C-producing node.
        let net = NetworkBuilder::new(4, 3)
            .node(n(0), [t(0)])
            .node(n(1), [t(0)])
            .node(n(2), [t(0), t(1)])
            .node(n(3), [t(0), t(2)])
            .rate(t(0), 1000.0)
            .rate(t(1), 1.0)
            .rate(t(2), 1.0)
            .build();
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(t(1)),
                Pattern::leaf(t(0)),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            100,
        )
        .unwrap();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        // The frequent type never crosses the network: cost excludes C.
        // Cost upper bound: broadcast both rare types everywhere = 2 types ·
        // 1.0 rate · ≤4 targets + final match streams.
        let central = centralized_cost(std::slice::from_ref(&q), &net);
        assert!(
            plan.cost < central / 10.0,
            "cost {} central {central}",
            plan.cost
        );
        let ctx = plan_ctx(&q, &net, &plan.table);
        plan.graph.check_correct(&ctx, 100_000).unwrap();
        assert!(
            plan.is_multi_sink(),
            "expected multi-sink, got {:?}",
            plan.sinks
        );
    }

    #[test]
    fn single_prim_query() {
        let net = fig1_network();
        let q = Query::build(QueryId(0), &Pattern::leaf(t(2)), vec![], 10).unwrap();
        // A single-leaf pattern is rejected at build time? No: leaf alone is
        // a valid query (primitive root).
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        assert_eq!(plan.cost, 0.0);
        assert_eq!(plan.sinks.len(), 1); // one producer of F in fig1
    }

    #[test]
    fn duplicate_types_rejected() {
        let net = fig1_network();
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(0))]),
            vec![],
            10,
        )
        .unwrap();
        assert!(matches!(
            amuse(&q, &net, &AMuseConfig::default()),
            Err(ModelError::UnsupportedInput(_))
        ));
    }

    #[test]
    fn producerless_type_rejected() {
        let net = NetworkBuilder::new(2, 3)
            .node(n(0), [t(0)])
            .node(n(1), [t(1)])
            .rate(t(0), 1.0)
            .rate(t(1), 1.0)
            .build();
        let q = robots_query(1.0);
        assert!(matches!(
            amuse(&q, &net, &AMuseConfig::default()),
            Err(ModelError::TypeWithoutProducer(_))
        ));
    }

    #[test]
    fn deterministic_output() {
        let net = fig1_network();
        let q = robots_query(0.05);
        let a = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let b = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        assert_eq!(a.cost, b.cost);
        assert!(a.graph.same_structure(&b.graph));
    }

    #[test]
    fn stats_populated() {
        let net = fig1_network();
        let q = robots_query(0.05);
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        assert_eq!(plan.stats.projections_total, 7);
        assert!(plan.stats.combinations > 0);
        assert!(plan.stats.graphs_evaluated > 0);
    }
}
