//! Structured diagnostics: severities, stable codes, source spans, and the
//! [`Report`] container with JSON and pretty renderers.

use std::fmt;

/// How consequential a diagnostic is. Ordered `Lint < Warning < Error`, so
/// `report.max_severity() >= Some(Severity::Error)` asks "must this plan be
/// refused?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Style or limitation note; the plan is still deployable.
    Lint,
    /// Suspicious but not provably wrong; deployment proceeds.
    Warning,
    /// A correctness violation; executors must refuse the plan.
    Error,
}

impl Severity {
    /// Lower-case name, as used in renderers and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Lint => "lint",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

macro_rules! codes {
    ($($(#[doc = $doc:literal])* $variant:ident = $code:literal, $sev:ident, $title:literal;)+) => {
        /// Stable diagnostic codes. The `MGxxxx` identifiers never change
        /// meaning across releases; retired codes are not reused. The first
        /// digit groups by pass: `1` query lints, `2` graph checks (the
        /// `MG025x` sub-range is the plan-diff migration family), `3`
        /// deployment checks.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Code {
            $($(#[doc = $doc])* #[doc = $title] $variant,)+
        }

        impl Code {
            /// The stable `MGxxxx` identifier.
            pub fn as_str(self) -> &'static str {
                match self { $(Code::$variant => $code,)+ }
            }

            /// The severity this code is reported at.
            pub fn severity(self) -> Severity {
                match self { $(Code::$variant => Severity::$sev,)+ }
            }

            /// One-line description of what the code means.
            pub fn title(self) -> &'static str {
                match self { $(Code::$variant => $title,)+ }
            }

            /// Every registered code, in numeric order.
            pub const ALL: &'static [Code] = &[$(Code::$variant,)+];
        }
    };
}

codes! {
    ParseFailure = "MG0100", Error, "query text fails to parse";
    UnsatisfiablePredicate = "MG0101", Error, "predicate can never hold";
    ContradictoryPredicates = "MG0102", Error, "two predicates are mutually contradictory";
    ZeroWindow = "MG0103", Error, "time window is zero";
    UnboundedWindow = "MG0104", Lint, "query has no WITHIN clause";
    DuplicateEventType = "MG0105", Warning, "event type bound by multiple primitive operators";
    NseqScopeViolation = "MG0106", Error, "predicate on a negated operator escapes its NSEQ scope";
    TrivialPredicate = "MG0107", Lint, "predicate always holds";
    DuplicateQuery = "MG0108", Lint, "query is an exact structural duplicate of an earlier query";
    SubsumedQuery = "MG0109", Lint, "query is structurally subsumed by an earlier query";
    GraphCycle = "MG0201", Error, "MuSE graph contains a cycle";
    MissingPrimitiveVertex = "MG0202", Error, "a (primitive, producing node) pair has no vertex";
    CompositeSource = "MG0203", Error, "source vertex hosts a composite projection";
    PrimitiveAtNonProducer = "MG0204", Error, "primitive vertex placed at a non-producing node";
    CrossQueryEdge = "MG0205", Error, "edge connects vertices of different queries";
    ImproperPredecessor = "MG0206", Error, "predecessor is not a proper sub-projection";
    IncompleteCombination = "MG0207", Error, "predecessors do not jointly cover the projection";
    RedundantCombination = "MG0208", Warning, "a predecessor projection is redundant (Def. 15)";
    NegationNotClosed = "MG0209", Error, "projection violates negation-closure (Def. 9)";
    IncompleteGraph = "MG0210", Error, "graph misses bindings required by completeness (Def. 8)";
    CompletenessSkipped = "MG0211", Lint, "completeness not checked (binding space too large)";
    MigrationPortable = "MG0250", Lint, "vertex state carries over unchanged";
    MigrationReplay = "MG0251", Warning, "window widened; state portable with replay";
    MigrationWindowNarrowed = "MG0252", Error, "window narrowed; join buffers cannot carry over";
    MigrationPredicatesChanged = "MG0253", Error, "predicates changed on a matched vertex";
    MigrationSinksChanged = "MG0254", Error, "sink attribution changed on a matched vertex";
    MigrationVertexLost = "MG0255", Error, "vertex of a surviving query has no correspondent";
    MigrationVertexFresh = "MG0256", Warning, "vertex added or moved; state starts cold";
    MigrationQueryDropped = "MG0257", Lint, "query removed; its state is dropped";
    MigrationQueryAdded = "MG0258", Lint, "query added; its state starts cold";
    UnreachableInput = "MG0301", Error, "projection input receives no events at its node";
    InconsistentCostModel = "MG0302", Warning, "edge weights disagree with the output-rate model";
    NonFiniteRate = "MG0303", Error, "projection output rate is not finite";
    OrphanVertex = "MG0304", Warning, "non-sink vertex feeds no successor";
    MissingSink = "MG0305", Error, "query has no sink vertex hosting the full projection";
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A byte range into the SASE query text a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the start of the region.
    pub offset: usize,
    /// Length of the region in bytes (0 for a point).
    pub len: usize,
}

impl Span {
    /// Span from a parser `Range<usize>`.
    pub fn from_range(r: std::ops::Range<usize>) -> Self {
        Span {
            offset: r.start,
            len: r.end.saturating_sub(r.start),
        }
    }

    /// Point span at a byte offset.
    pub fn point(offset: usize) -> Self {
        Span { offset, len: 0 }
    }
}

/// One finding: a code, its severity, a message, and an optional span into
/// the query source.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// Human-readable explanation with concrete identifiers.
    pub message: String,
    /// Where in the SASE text the problem is, when known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            span: None,
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// An ordered collection of diagnostics produced by one verification run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Appends all diagnostics of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Iterates over the diagnostics in report order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// `true` when no diagnostic of any severity was produced.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Alias for [`Report::is_empty`]: a fully clean verification.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// `true` when at least one `Error`-severity diagnostic is present —
    /// the condition under which `muse-runtime` refuses to deploy.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// `true` if any diagnostic carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// The worst severity present, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// Number of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == sev).count()
    }

    /// Sorts diagnostics: errors first, then by code, then by span offset.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.as_str().cmp(b.code.as_str()))
                .then_with(|| a.span.map(|s| s.offset).cmp(&b.span.map(|s| s.offset)))
        });
    }

    /// Renders the report as a JSON array of diagnostic objects:
    /// `[{"code": "MG0102", "severity": "error", "message": "...",
    /// "span": {"offset": 12, "len": 5}}, ...]`. The `span` field is `null`
    /// when the diagnostic has no source location.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.as_str());
            out.push_str("\",\"message\":\"");
            json_escape_into(&d.message, &mut out);
            out.push_str("\",\"span\":");
            match d.span {
                Some(s) => {
                    out.push_str(&format!("{{\"offset\":{},\"len\":{}}}", s.offset, s.len));
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// Renders a human-readable report. When `source` is the SASE query
    /// text, spanned diagnostics quote the offending line with a caret
    /// underline.
    pub fn render_pretty(&self, source: Option<&str>) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&format!("{d}\n"));
            if let (Some(span), Some(src)) = (d.span, source) {
                render_span(&mut out, src, span);
            }
        }
        let (e, w, l) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Lint),
        );
        out.push_str(&format!(
            "{} diagnostic(s): {e} error(s), {w} warning(s), {l} lint(s)\n",
            self.len()
        ));
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_pretty(None))
    }
}

fn render_span(out: &mut String, src: &str, span: Span) {
    let offset = span.offset.min(src.len());
    let line_start = src[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = src[offset..]
        .find('\n')
        .map(|i| offset + i)
        .unwrap_or(src.len());
    let line = &src[line_start..line_end];
    let col = offset - line_start;
    let len = span.len.max(1).min(line.len().saturating_sub(col).max(1));
    out.push_str(&format!("  | {line}\n"));
    out.push_str(&format!("  | {}{}\n", " ".repeat(col), "^".repeat(len)));
}

fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for &c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with("MG"), "bad prefix for {c}");
            assert_eq!(c.as_str().len(), 6, "bad length for {c}");
            assert!(!c.title().is_empty());
        }
    }

    #[test]
    fn severity_ordering_drives_has_errors() {
        assert!(Severity::Lint < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        let mut r = Report::new();
        r.push(Diagnostic::new(Code::UnboundedWindow, "no window"));
        assert!(!r.has_errors());
        assert_eq!(r.max_severity(), Some(Severity::Lint));
        r.push(Diagnostic::new(Code::ZeroWindow, "zero window"));
        assert!(r.has_errors());
        assert_eq!(r.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn json_escapes_and_spans() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Code::ParseFailure, "bad \"quote\"\nline")
                .with_span(Span { offset: 3, len: 4 }),
        );
        let json = r.to_json();
        assert!(json.contains("\\\"quote\\\"\\nline"), "{json}");
        assert!(json.contains("\"span\":{\"offset\":3,\"len\":4}"), "{json}");
    }

    #[test]
    fn pretty_renders_caret_under_span() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Code::ZeroWindow, "window is zero")
                .with_span(Span { offset: 8, len: 6 }),
        );
        let text = r.render_pretty(Some("PATTERN WITHIN 0"));
        assert!(text.contains("error[MG0103]"), "{text}");
        assert!(text.contains("        ^^^^^^"), "{text}");
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = Report::new();
        r.push(Diagnostic::new(Code::UnboundedWindow, "lint"));
        r.push(Diagnostic::new(Code::ZeroWindow, "error"));
        r.sort();
        assert_eq!(r.iter().next().unwrap().code, Code::ZeroWindow);
    }
}
