//! Pass 1: query-level lints on the parsed AST — unsatisfiable or
//! contradictory predicates (decided in the [`crate::domain`] interval
//! abstract domain), zero/absent windows, duplicate event types, and NSEQ
//! scoping violations.

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::domain::{AbsAttr, PredAbstract};
use muse_core::catalog::Catalog;
use muse_core::error::ModelError;
use muse_core::event::Value;
use muse_core::query::parser::{parse_query_with_spans, ParserOptions, QuerySpans};
use muse_core::query::{CmpOp, Predicate, PredicateExpr, Query};
use muse_core::types::{AttrId, PrimId, QueryId};

/// Parses `input` and lints the result, accumulating diagnostics into
/// `report`. Parse failures become [`Code::ParseFailure`] with a span at the
/// error offset; on success the query is returned for further verification.
pub fn lint_query_text(
    input: &str,
    id: QueryId,
    catalog: &mut Catalog,
    options: &ParserOptions,
    report: &mut Report,
) -> Option<Query> {
    match parse_query_with_spans(input, id, catalog, options) {
        Ok((query, spans)) => {
            lint_query(&query, Some(&spans), report);
            Some(query)
        }
        Err(ModelError::Parse { offset, message }) => {
            report
                .push(Diagnostic::new(Code::ParseFailure, message).with_span(Span::point(offset)));
            None
        }
        Err(other) => {
            report.push(Diagnostic::new(Code::ParseFailure, other.to_string()));
            None
        }
    }
}

/// Lints a parsed [`Query`]. When `spans` carries the parser's source map,
/// diagnostics point into the original SASE text; without it they are
/// span-free (hand-built queries).
pub fn lint_query(query: &Query, spans: Option<&QuerySpans>, report: &mut Report) {
    lint_window(query, spans, report);
    lint_duplicate_types(query, spans, report);
    lint_nseq_scoping(query, spans, report);
    lint_predicates(query, spans, report);
}

fn pred_span(spans: Option<&QuerySpans>, index: usize) -> Option<Span> {
    spans
        .and_then(|s| s.predicates.get(index))
        .map(|r| Span::from_range(r.clone()))
}

fn lint_window(query: &Query, spans: Option<&QuerySpans>, report: &mut Report) {
    if query.window() == 0 {
        let mut d = Diagnostic::new(
            Code::ZeroWindow,
            "time window is 0: no two events can ever co-occur within it",
        );
        if let Some(r) = spans.and_then(|s| s.window.clone()) {
            d = d.with_span(Span::from_range(r));
        }
        report.push(d);
    }
    // Only flag a missing WITHIN when we know the text had none; hand-built
    // queries always carry an explicit window value.
    if let Some(s) = spans {
        if s.window.is_none() {
            report.push(Diagnostic::new(
                Code::UnboundedWindow,
                "query has no WITHIN clause; the parser default window applies",
            ));
        }
    }
}

fn lint_duplicate_types(query: &Query, spans: Option<&QuerySpans>, report: &mut Report) {
    let types = query.prim_types();
    for (i, ty) in types.iter().enumerate() {
        if let Some(j) = types[..i].iter().position(|t| t == ty) {
            let mut d = Diagnostic::new(
                Code::DuplicateEventType,
                format!(
                    "event type of primitive operators #{j} and #{i} is the same \
                     ({ty:?}); aMuSE requires distinct types per operator"
                ),
            );
            if let Some(r) = spans.and_then(|s| s.leaves.get(i)) {
                d = d.with_span(Span::from_range(r.clone()));
            }
            report.push(d);
        }
    }
}

fn lint_nseq_scoping(query: &Query, spans: Option<&QuerySpans>, report: &mut Report) {
    for (i, pred) in query.predicates().iter().enumerate() {
        let prims = pred.prims();
        for ctx in query.nseq_contexts() {
            if prims.is_disjoint(ctx.negated) {
                continue;
            }
            let scope = ctx.first.union(ctx.negated).union(ctx.last);
            if !prims.is_subset(scope) {
                let outside = prims.difference(scope);
                let mut d = Diagnostic::new(
                    Code::NseqScopeViolation,
                    format!(
                        "predicate #{i} relates a negated operator to {outside:?} outside \
                         its NSEQ context; negation is only evaluated between the \
                         context's first and last operators"
                    ),
                );
                if let Some(s) = pred_span(spans, i) {
                    d = d.with_span(s);
                }
                report.push(d);
            }
        }
    }
}

/// Bitmask of `Ordering` outcomes (`x cmp bound`) an operator accepts:
/// `L`ess, `E`qual, `G`reater.
const L: u8 = 0b001;
const E: u8 = 0b010;
const G: u8 = 0b100;

fn allowed(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => E,
        CmpOp::Ne => L | G,
        CmpOp::Lt => L,
        CmpOp::Le => L | E,
        CmpOp::Gt => G,
        CmpOp::Ge => G | E,
    }
}

/// Flips an operator across `a OP b ⇔ b flip(OP) a`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

fn lint_predicates(query: &Query, spans: Option<&QuerySpans>, report: &mut Report) {
    let preds = query.predicates();
    for (i, p) in preds.iter().enumerate() {
        lint_single_predicate(i, p, spans, report);
    }
    for i in 0..preds.len() {
        for j in (i + 1)..preds.len() {
            if predicates_contradict(&preds[i], &preds[j]) {
                let mut d = Diagnostic::new(
                    Code::ContradictoryPredicates,
                    format!(
                        "predicates #{i} and #{j} can never hold together: \
                         `{}` contradicts `{}`",
                        render_pred(&preds[i]),
                        render_pred(&preds[j]),
                    ),
                );
                if let Some(s) = pred_span(spans, j).or_else(|| pred_span(spans, i)) {
                    d = d.with_span(s);
                }
                report.push(d);
            }
        }
    }
    lint_joint_unsatisfiable(preds, spans, report);
}

/// Flags per-`(prim, attr)` conjunctions of unary predicates that are
/// *jointly* unsatisfiable although every pair is satisfiable — the case
/// pairwise checking can never see (`x >= 5 AND x <= 5 AND x != 5`: each
/// pair admits a value, the triple does not). All unary constraints on an
/// attribute are folded into one [`AbsAttr`] and the accumulated abstract
/// value is tested for emptiness; groups where some pair already
/// contradicts are skipped to avoid double-reporting.
fn lint_joint_unsatisfiable(preds: &[Predicate], spans: Option<&QuerySpans>, report: &mut Report) {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(PrimId, AttrId), Vec<usize>> = BTreeMap::new();
    for (i, p) in preds.iter().enumerate() {
        if let PredicateExpr::UnaryConst { prim, attr, .. } = &p.expr {
            groups.entry((*prim, *attr)).or_default().push(i);
        }
    }
    for ((prim, attr), idxs) in groups {
        if idxs.len() < 3 {
            continue; // fully covered by the pairwise check above
        }
        let pair_flagged = idxs.iter().enumerate().any(|(k, &i)| {
            idxs[k + 1..]
                .iter()
                .any(|&j| predicates_contradict(&preds[i], &preds[j]))
        });
        if pair_flagged {
            continue;
        }
        let mut abs = AbsAttr::top();
        for &i in &idxs {
            if let PredicateExpr::UnaryConst { op, value, .. } = &preds[i].expr {
                abs.constrain(*op, value);
            }
        }
        if abs.is_empty() {
            let list: Vec<String> = idxs.iter().map(|i| format!("#{i}")).collect();
            let mut d = Diagnostic::new(
                Code::ContradictoryPredicates,
                format!(
                    "predicates {} on p{}.a{} are jointly unsatisfiable: no value of \
                     the attribute satisfies all of them, although every pair does",
                    list.join(", "),
                    prim.0,
                    attr.0
                ),
            );
            if let Some(s) = idxs.iter().rev().find_map(|&i| pred_span(spans, i)) {
                d = d.with_span(s);
            }
            report.push(d);
        }
    }
}

fn lint_single_predicate(
    index: usize,
    pred: &Predicate,
    spans: Option<&QuerySpans>,
    report: &mut Report,
) {
    let finding = match &pred.expr {
        PredicateExpr::BinaryAttr {
            left_prim,
            left_attr,
            op,
            right_prim,
            right_attr,
        } if left_prim == right_prim && left_attr == right_attr => {
            // `x.a OP x.a` compares an attribute with itself.
            if allowed(*op) & E != 0 {
                Some((Code::TrivialPredicate, "always holds"))
            } else {
                Some((Code::UnsatisfiablePredicate, "can never hold"))
            }
        }
        PredicateExpr::UnaryConst {
            value: Value::Float(f),
            ..
        } if f.is_nan() => Some((
            Code::UnsatisfiablePredicate,
            "compares against NaN, which is unordered",
        )),
        _ => None,
    };
    if let Some((code, why)) = finding {
        let mut d = Diagnostic::new(
            code,
            format!("predicate #{index} `{}` {why}", render_pred(pred)),
        );
        if let Some(s) = pred_span(spans, index) {
            d = d.with_span(s);
        }
        report.push(d);
    }
}

/// Decides whether two predicates are jointly unsatisfiable. Handles unary
/// pairs on the same `(prim, attr)` and binary pairs over the same attribute
/// pair; anything else is conservatively satisfiable.
fn predicates_contradict(a: &Predicate, b: &Predicate) -> bool {
    match (&a.expr, &b.expr) {
        (
            PredicateExpr::UnaryConst {
                prim: p1,
                attr: a1,
                op: op1,
                value: v1,
            },
            PredicateExpr::UnaryConst {
                prim: p2,
                attr: a2,
                op: op2,
                value: v2,
            },
        ) if p1 == p2 && a1 == a2 => unary_pair_contradicts(*op1, v1, *op2, v2),
        (
            PredicateExpr::BinaryAttr {
                left_prim: l1,
                left_attr: la1,
                op: op1,
                right_prim: r1,
                right_attr: ra1,
            },
            PredicateExpr::BinaryAttr {
                left_prim: l2,
                left_attr: la2,
                op: op2,
                right_prim: r2,
                right_attr: ra2,
            },
        ) => {
            // Normalize both to the same reference orientation.
            let k1 = ((*l1, *la1), (*r1, *ra1));
            if k1 == ((*l2, *la2), (*r2, *ra2)) {
                allowed(*op1) & allowed(*op2) == 0
            } else if k1 == ((*r2, *ra2), (*l2, *la2)) && (l1, la1) != (r1, ra1) {
                allowed(*op1) & allowed(flip(*op2)) == 0
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Decides joint unsatisfiability of `x OP1 v1 AND x OP2 v2` exactly, by
/// meeting both constraints in the interval abstract domain and testing the
/// result for emptiness. This replaces the seed's 5-point numeric sampling,
/// which could only witness satisfiability at sampled points and silently
/// under-approximated the string and mixed-type cases.
fn unary_pair_contradicts(op1: CmpOp, v1: &Value, op2: CmpOp, v2: &Value) -> bool {
    let mut abs = AbsAttr::top();
    abs.constrain(op1, v1);
    abs.constrain(op2, v2);
    abs.is_empty()
}

/// Cross-query lints over a whole workload: exact structural duplicates
/// ([`Code::DuplicateQuery`]) and structural subsumption
/// ([`Code::SubsumedQuery`]).
///
/// Two queries are *exact duplicates* when their type trees, windows, and
/// predicate sets coincide — the shared-plan deployment evaluates them as
/// one physical task, so duplicates are harmless but usually indicate a
/// tenant registering the same query twice. A query is *subsumed* by
/// another when both share the type tree and window and its predicate set
/// *implies* the other's in the interval abstract domain (a syntactic
/// superset is the special case; `x > 5` is also subsumed by `x > 3`):
/// every match of the stricter query is also produced by the looser one,
/// so the stricter query could be answered by filtering the looser query's
/// output stream.
///
/// Queries are grouped by type-tree signature and window, so unrelated
/// queries are never compared; within a group, exact duplicates are found
/// by hashing and subsumption by pairwise [`PredAbstract::implies`] against
/// earlier group members.
pub fn lint_workload(queries: &[Query], report: &mut Report) {
    use std::collections::{BTreeSet, HashMap};
    let mut exact: HashMap<String, QueryId> = HashMap::new();
    let mut groups: HashMap<String, Vec<(QueryId, PredAbstract)>> = HashMap::new();
    for query in queries {
        // Order-preserving signature: predicates are compared over prim
        // ids, and prim numbering only lines up between two queries whose
        // trees agree in declaration order (the canonical `signature` sorts
        // AND/OR children and would flag AND(t0,t2) as a duplicate of
        // AND(t2,t0) even when a unary predicate on P0 means different
        // things in the two).
        let skeleton = format!(
            "{};w{}",
            query.root().tree_signature(query.prim_types()),
            query.window()
        );
        let pred_strs: BTreeSet<String> = query
            .predicates()
            .iter()
            .map(|p| format!("{p:?}"))
            .collect();
        let abs = PredAbstract::from_predicates(query.predicates());
        let mut full = skeleton.clone();
        for p in &pred_strs {
            full.push(';');
            full.push_str(p);
        }
        if let Some(&rep) = exact.get(&full) {
            report.push(Diagnostic::new(
                Code::DuplicateQuery,
                format!(
                    "query {:?} is an exact structural duplicate of query {rep:?} \
                     (same pattern, window, and predicates); shared-plan deployment \
                     evaluates them once",
                    query.id()
                ),
            ));
            groups.entry(skeleton).or_default().push((query.id(), abs));
            continue;
        }
        exact.insert(full, query.id());
        let members = groups.entry(skeleton).or_default();
        for (other, other_abs) in members.iter() {
            if abs.implies(other_abs) {
                report.push(Diagnostic::new(
                    Code::SubsumedQuery,
                    format!(
                        "query {:?} is subsumed by query {other:?}: same pattern and \
                         window with predicates that imply its predicates, so its \
                         matches are a subset of {other:?}'s output stream",
                        query.id()
                    ),
                ));
                break;
            }
            if other_abs.implies(&abs) {
                report.push(Diagnostic::new(
                    Code::SubsumedQuery,
                    format!(
                        "query {other:?} is subsumed by query {:?}: same pattern and \
                         window with predicates that imply its predicates, so its \
                         matches are a subset of {:?}'s output stream",
                        query.id(),
                        query.id()
                    ),
                ));
                break;
            }
        }
        members.push((query.id(), abs));
    }
}

fn render_pred(p: &Predicate) -> String {
    fn attr(prim: PrimId, a: AttrId) -> String {
        format!("p{}.a{}", prim.0, a.0)
    }
    match &p.expr {
        PredicateExpr::UnaryConst {
            prim,
            attr: a,
            op,
            value,
        } => format!("{} {} {value:?}", attr(*prim, *a), op.symbol()),
        PredicateExpr::BinaryAttr {
            left_prim,
            left_attr,
            op,
            right_prim,
            right_attr,
        } => format!(
            "{} {} {}",
            attr(*left_prim, *left_attr),
            op.symbol(),
            attr(*right_prim, *right_attr)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::query::Pattern;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_event_type("Fail").unwrap();
        c.add_event_type("Kill").unwrap();
        c.add_attr("x").unwrap();
        c
    }

    fn lint_text(input: &str) -> Report {
        let mut report = Report::new();
        let mut cat = catalog();
        let opts = ParserOptions {
            auto_register_types: true,
            auto_register_attrs: true,
            ..Default::default()
        };
        lint_query_text(input, QueryId(0), &mut cat, &opts, &mut report);
        report
    }

    #[test]
    fn clean_query_has_no_diagnostics() {
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x = k.x WITHIN 1000");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn parse_failure_reported_with_span() {
        let r = lint_text("PATTERN SEQ(Fail f,");
        assert!(r.has_code(Code::ParseFailure));
        assert!(r.has_errors());
    }

    #[test]
    fn zero_window_is_error() {
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WITHIN 0");
        assert!(r.has_code(Code::ZeroWindow), "{r}");
    }

    #[test]
    fn missing_within_is_lint() {
        let r = lint_text("PATTERN SEQ(Fail f, Kill k)");
        assert!(r.has_code(Code::UnboundedWindow), "{r}");
        assert!(!r.has_errors());
    }

    #[test]
    fn duplicate_type_is_warning() {
        let r = lint_text("PATTERN SEQ(Fail a, Fail b) WITHIN 10");
        assert!(r.has_code(Code::DuplicateEventType), "{r}");
        assert!(!r.has_errors());
    }

    #[test]
    fn self_comparison_trivial_and_unsat() {
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x = f.x WITHIN 10");
        assert!(r.has_code(Code::TrivialPredicate), "{r}");
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x < f.x WITHIN 10");
        assert!(r.has_code(Code::UnsatisfiablePredicate), "{r}");
    }

    #[test]
    fn contradictory_equalities() {
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x = 1 AND f.x = 2 WITHIN 10");
        assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
    }

    #[test]
    fn contradictory_ranges() {
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x < 1 AND f.x > 2 WITHIN 10");
        assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
        // Satisfiable range stays clean.
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x > 1 AND f.x < 2 WITHIN 10");
        assert!(!r.has_code(Code::ContradictoryPredicates), "{r}");
        // Touching bounds: x <= 1 AND x >= 1 is satisfiable at exactly 1.
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x <= 1 AND f.x >= 1 WITHIN 10");
        assert!(!r.has_code(Code::ContradictoryPredicates), "{r}");
        // Strict versions are not.
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x < 1 AND f.x > 1 WITHIN 10");
        assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
    }

    #[test]
    fn contradictory_binary_orientations() {
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x < k.x AND k.x < f.x WITHIN 10");
        assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x = k.x AND f.x != k.x WITHIN 10");
        assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x <= k.x AND k.x >= f.x WITHIN 10");
        assert!(!r.has_code(Code::ContradictoryPredicates), "{r}");
    }

    #[test]
    fn string_equality_contradiction() {
        let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x = 'a' AND f.x = 'b' WITHIN 10");
        assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
    }

    #[test]
    fn nseq_scope_violation_flagged() {
        let mut report = Report::new();
        let mut cat = Catalog::new();
        let opts = ParserOptions {
            auto_register_types: true,
            auto_register_attrs: true,
            ..Default::default()
        };
        let q = lint_query_text(
            "PATTERN SEQ(NSEQ(A a, B b, C c), D d) WHERE b.x = d.x WITHIN 10",
            QueryId(0),
            &mut cat,
            &opts,
            &mut report,
        );
        assert!(q.is_some());
        assert!(report.has_code(Code::NseqScopeViolation), "{report}");
    }

    #[test]
    fn hand_built_query_lints_without_spans() {
        let mut cat = Catalog::new();
        let a = cat.add_event_type("A").unwrap();
        let b = cat.add_event_type("B").unwrap();
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(a), Pattern::leaf(b)]),
            vec![],
            0,
        )
        .unwrap();
        let mut r = Report::new();
        lint_query(&q, None, &mut r);
        assert!(r.has_code(Code::ZeroWindow), "{r}");
        assert!(!r.has_code(Code::UnboundedWindow), "{r}");
    }

    fn seq_query(id: u32, preds: Vec<Predicate>, window: u64) -> Query {
        let mut cat = Catalog::new();
        let a = cat.add_event_type("A").unwrap();
        let b = cat.add_event_type("B").unwrap();
        Query::build(
            QueryId(id),
            &Pattern::seq([Pattern::leaf(a), Pattern::leaf(b)]),
            preds,
            window,
        )
        .unwrap()
    }

    fn eq_pred() -> Predicate {
        Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(1), AttrId(0)),
            0.1,
        )
    }

    fn band_pred() -> Predicate {
        Predicate::unary(PrimId(0), AttrId(1), CmpOp::Ge, Value::Int(5), 0.5)
    }

    #[test]
    fn exact_duplicate_queries_linted() {
        let queries = vec![
            seq_query(0, vec![eq_pred()], 100),
            seq_query(1, vec![eq_pred()], 100),
        ];
        let mut r = Report::new();
        lint_workload(&queries, &mut r);
        assert!(r.has_code(Code::DuplicateQuery), "{r}");
        assert!(!r.has_code(Code::SubsumedQuery), "{r}");
    }

    #[test]
    fn subsumed_query_linted() {
        // Query 1 carries a superset of query 0's predicates.
        let queries = vec![
            seq_query(0, vec![eq_pred()], 100),
            seq_query(1, vec![eq_pred(), band_pred()], 100),
        ];
        let mut r = Report::new();
        lint_workload(&queries, &mut r);
        assert!(r.has_code(Code::SubsumedQuery), "{r}");
        assert!(!r.has_code(Code::DuplicateQuery), "{r}");
        // Subsumption is detected in either registration order.
        let reversed = vec![
            seq_query(0, vec![eq_pred(), band_pred()], 100),
            seq_query(1, vec![eq_pred()], 100),
        ];
        let mut r = Report::new();
        lint_workload(&reversed, &mut r);
        assert!(r.has_code(Code::SubsumedQuery), "{r}");
    }

    #[test]
    fn different_windows_are_not_duplicates() {
        let queries = vec![
            seq_query(0, vec![eq_pred()], 100),
            seq_query(1, vec![eq_pred()], 200),
        ];
        let mut r = Report::new();
        lint_workload(&queries, &mut r);
        assert!(!r.has_code(Code::DuplicateQuery), "{r}");
        assert!(!r.has_code(Code::SubsumedQuery), "{r}");
    }
}
