//! Plan-diff migration-safety pass (the `MG025x` family).
//!
//! Given two placed MuSE graphs A (the running plan, whose snapshot exists)
//! and B (the replacement), this pass statically decides which parts of a
//! [`Snapshot`](../muse_runtime/checkpoint) can be mapped from A's tasks
//! onto B's tasks — before any executor runs. The unit of correspondence is
//! the *physical task* after shared-vertex collapse: vertices with equal
//! `(node, stream_sig, prims, window)` evaluate as one task, exactly
//! mirroring `Deployment::build`.
//!
//! Correspondence is keyed on the order-preserving *structure* of a vertex
//! — `(node, tree_signature, prims, predecessor slots)` — deliberately
//! excluding the window and the predicates, so that an edited query still
//! matches its old vertex and the edit itself can be diagnosed:
//!
//! * equal window, equivalent predicates (interval-domain equivalence, so
//!   reordered or redundant predicate lists still qualify), equal sink
//!   attribution → **MG0250** portable: join buffers, watermarks, and
//!   dedup state carry over unchanged;
//! * widened window → **MG0251** portable-with-replay: buffers carry over
//!   but events inside the widened horizon were already evicted;
//! * narrowed window → **MG0252** unsafe: carried buffers would hold
//!   partial matches older than the new window;
//! * changed predicates → **MG0253** unsafe: carried buffers and in-flight
//!   frames hold events the new predicate set never admitted;
//! * changed sink attribution → **MG0254** unsafe: per-query delivered-
//!   match state cannot be re-attributed.
//!
//! Unmatched vertices split by whether their queries survive: a surviving
//! query losing a vertex is **MG0255** (its state has nowhere to go), a
//! vertex that moved node or is newly added for a surviving query is
//! **MG0256** (cold start), and whole queries disappearing or appearing are
//! **MG0257**/**MG0258** (state dropped / cold start, both benign).
//!
//! The decision ships as a typed [`MigrationPlan`] of per-task
//! [`TaskAction`]s, consumed by `muse-runtime`'s
//! `checkpoint::restore_mapped` to actually carry the state across.

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::domain::PredAbstract;
use muse_core::event::{Timestamp, Value};
use muse_core::graph::{MuseGraph, PlanContext};
use muse_core::query::{Predicate, PredicateExpr};
use muse_core::types::{NodeId, PrimSet, QueryId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How the state of one physical task moves across the migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarryMode {
    /// Old task state restores into the new task unchanged.
    Carry,
    /// State restores, but the widened window horizon must be replayed for
    /// completeness.
    Replay,
    /// The new task starts with empty state.
    Fresh,
    /// The old task's state is discarded (its queries were removed).
    Drop,
}

/// Identity of a physical task within a deployment: the shared-collapse key
/// `(node, stream_sig, prims, window)` that `Deployment::build` dedupes on.
/// Computable identically from a verifier-side vertex profile and from a
/// runtime-side `TaskSpec`, which is what lets a [`MigrationPlan`] produced
/// here drive `restore_mapped` over there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskKey {
    /// Hosting node.
    pub node: NodeId,
    /// Output stream identity (tree + predicates).
    pub stream_sig: u64,
    /// Retained primitive set, as bits.
    pub prims: u64,
    /// The owning query's window.
    pub window: Timestamp,
}

/// One per-task migration decision.
#[derive(Debug, Clone)]
pub struct TaskAction {
    /// The old task the state comes from (`None` for added tasks).
    pub from: Option<TaskKey>,
    /// The new task the state goes to (`None` for dropped tasks).
    pub to: Option<TaskKey>,
    /// How the state moves.
    pub mode: CarryMode,
    /// Human-readable task description (structure `@` node).
    pub detail: String,
}

/// The typed outcome of the migration pass.
#[derive(Debug, Clone, Default)]
pub struct MigrationPlan {
    /// `true` when no `Error`-severity diagnostic was produced; only then
    /// may `restore_mapped` proceed.
    pub safe: bool,
    /// `true` when at least one action is [`CarryMode::Replay`] — the
    /// restored run is complete only after replaying the widened horizon.
    pub needs_replay: bool,
    /// Number of matched physical-task pairs.
    pub matched: usize,
    /// Per-task decisions, in plan order (old plan first, then additions).
    pub actions: Vec<TaskAction>,
    /// Queries present in A but not in B.
    pub dropped_queries: Vec<QueryId>,
    /// Queries present in B but not in A.
    pub added_queries: Vec<QueryId>,
}

/// Optional source spans of plan B's query text, for caret-rendered
/// diagnostics: byte ranges into the concatenated new-query source buffer.
#[derive(Debug, Clone, Default)]
pub struct MigrationSpans {
    /// Per new-plan query: spans of its text regions.
    pub per_query: BTreeMap<QueryId, QuerySpanInfo>,
}

/// Span regions of one query's text.
#[derive(Debug, Clone)]
pub struct QuerySpanInfo {
    /// The whole query.
    pub all: Span,
    /// The `WITHIN` clause, when present.
    pub window: Option<Span>,
    /// One span per predicate, in declaration order.
    pub predicates: Vec<Span>,
}

/// A physical task of one plan, after shared-vertex collapse.
struct Profile {
    /// Correspondence key: node, order-preserving tree signature, retained
    /// prims, predecessor slot layout. Window and predicates are excluded
    /// so edits still match.
    node: NodeId,
    tree: String,
    prims: PrimSet,
    slots: Vec<PrimSet>,
    /// The runtime-side shared-collapse key.
    task_key: TaskKey,
    window: Timestamp,
    preds: PredAbstract,
    pred_text: Vec<String>,
    /// Queries whose logical vertices collapsed onto this task.
    queries: BTreeSet<QueryId>,
    /// Queries this task delivers matches for.
    sinks: BTreeSet<QueryId>,
    label: String,
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => format!("{s:?}"),
    }
}

fn render_pred(p: &Predicate) -> String {
    match &p.expr {
        PredicateExpr::UnaryConst {
            prim,
            attr,
            op,
            value,
        } => format!(
            "p{}.a{} {} {}",
            prim.0,
            attr.0,
            op.symbol(),
            render_value(value)
        ),
        PredicateExpr::BinaryAttr {
            left_prim,
            left_attr,
            op,
            right_prim,
            right_attr,
        } => format!(
            "p{}.a{} {} p{}.a{}",
            left_prim.0,
            left_attr.0,
            op.symbol(),
            right_prim.0,
            right_attr.0
        ),
    }
}

/// Collapses a placed graph into physical-task profiles, mirroring
/// `Deployment::build` under `Sharing::Shared`: first vertex per
/// `(node, stream_sig, prims, window)` owns the task and its slot layout,
/// later structural twins only contribute their query and sink attribution.
fn build_profiles(graph: &MuseGraph, ctx: &PlanContext<'_>) -> Vec<Profile> {
    let mut profiles: Vec<Profile> = Vec::new();
    let mut by_key: HashMap<(NodeId, u64, PrimSet, Timestamp), usize> = HashMap::new();
    for v in graph.vertices() {
        let proj = ctx.proj(v.proj);
        let query = ctx.query_of(v.proj);
        let key = (v.node, proj.stream_sig, proj.prims, query.window());
        let is_sink = proj.is_full_query(query);
        if let Some(&i) = by_key.get(&key) {
            profiles[i].queries.insert(proj.source);
            if is_sink {
                profiles[i].sinks.insert(proj.source);
            }
            continue;
        }
        by_key.insert(key, profiles.len());
        let mut slots: Vec<PrimSet> = graph
            .predecessors(v)
            .iter()
            .map(|p| ctx.proj(p.proj).prims)
            .collect();
        slots.sort();
        slots.dedup();
        let tree = proj.structure_sig(query);
        let label = format!("{}@N{}", tree, v.node.0);
        profiles.push(Profile {
            node: v.node,
            tree,
            prims: proj.prims,
            slots,
            task_key: TaskKey {
                node: v.node,
                stream_sig: proj.stream_sig,
                prims: proj.prims.bits(),
                window: query.window(),
            },
            window: query.window(),
            preds: PredAbstract::from_indices(query, &proj.predicates),
            pred_text: proj
                .predicates
                .iter()
                .filter_map(|&i| query.predicates().get(i).map(render_pred))
                .collect(),
            queries: BTreeSet::from([proj.source]),
            sinks: if is_sink {
                BTreeSet::from([proj.source])
            } else {
                BTreeSet::new()
            },
            label,
        });
    }
    profiles
}

fn query_ids(ctx: &PlanContext<'_>) -> BTreeSet<QueryId> {
    ctx.queries.iter().map(|q| q.id()).collect()
}

fn fmt_queries(qs: &BTreeSet<QueryId>) -> String {
    let items: Vec<String> = qs.iter().map(|q| format!("{q:?}")).collect();
    format!("{{{}}}", items.join(", "))
}

/// Picks the caret span for a diagnostic about a matched/new vertex: the
/// most specific region of the smallest surviving query the task serves.
fn span_for(
    spans: Option<&MigrationSpans>,
    profile: &Profile,
    region: fn(&QuerySpanInfo) -> Option<Span>,
) -> Option<Span> {
    let spans = spans?;
    let q = profile
        .sinks
        .iter()
        .chain(profile.queries.iter())
        .find(|q| spans.per_query.contains_key(q))?;
    let info = spans.per_query.get(q)?;
    region(info).or(Some(info.all))
}

/// Runs the plan-diff migration-safety pass: diagnostics into the returned
/// [`Report`] (sorted by severity, `MG025x` codes), the typed decision as a
/// [`MigrationPlan`]. `spans`, when given, attaches plan-B source spans for
/// caret rendering.
pub fn verify_migration(
    a_graph: &MuseGraph,
    a_ctx: &PlanContext<'_>,
    b_graph: &MuseGraph,
    b_ctx: &PlanContext<'_>,
    spans: Option<&MigrationSpans>,
) -> (Report, MigrationPlan) {
    let mut report = Report::new();
    let mut plan = MigrationPlan::default();

    let a_profiles = build_profiles(a_graph, a_ctx);
    let b_profiles = build_profiles(b_graph, b_ctx);
    let a_queries = query_ids(a_ctx);
    let b_queries = query_ids(b_ctx);
    plan.dropped_queries = a_queries.difference(&b_queries).copied().collect();
    plan.added_queries = b_queries.difference(&a_queries).copied().collect();

    // Primary correspondence: identical structural key. Within a key group
    // (same structure, different window or predicates — e.g. two variants
    // of one query family at the same node) prefer the candidate that
    // needs the least work: same window and equivalent predicates first,
    // then same window, then declaration order.
    type Key = (NodeId, String, PrimSet, Vec<PrimSet>);
    let key_of = |p: &Profile| -> Key { (p.node, p.tree.clone(), p.prims, p.slots.clone()) };
    let mut b_free: HashMap<Key, Vec<usize>> = HashMap::new();
    for (i, p) in b_profiles.iter().enumerate() {
        b_free.entry(key_of(p)).or_default().push(i);
    }
    let mut b_matched = vec![false; b_profiles.len()];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut a_unmatched: Vec<usize> = Vec::new();
    for (ai, pa) in a_profiles.iter().enumerate() {
        let Some(cands) = b_free.get_mut(&key_of(pa)) else {
            a_unmatched.push(ai);
            continue;
        };
        let pick = cands
            .iter()
            .position(|&bi| {
                let pb = &b_profiles[bi];
                pb.window == pa.window && pb.preds.equivalent(&pa.preds) && pb.sinks == pa.sinks
            })
            .or_else(|| {
                cands
                    .iter()
                    .position(|&bi| b_profiles[bi].window == pa.window)
            })
            .unwrap_or(0);
        if cands.is_empty() {
            a_unmatched.push(ai);
            continue;
        }
        let bi = cands.remove(pick);
        b_matched[bi] = true;
        pairs.push((ai, bi));
    }

    // Secondary pass: same structure at a different node — a placement
    // move. State does not follow the move (in-flight frames address the
    // old node), so the new task starts cold.
    let mut moved: Vec<(usize, usize)> = Vec::new();
    let mut a_lost: Vec<usize> = Vec::new();
    for &ai in &a_unmatched {
        let pa = &a_profiles[ai];
        let found = b_profiles.iter().enumerate().find(|(bi, pb)| {
            !b_matched[*bi]
                && pb.tree == pa.tree
                && pb.prims == pa.prims
                && pb.slots == pa.slots
                && pb.node != pa.node
        });
        match found {
            Some((bi, _)) => {
                b_matched[bi] = true;
                moved.push((ai, bi));
            }
            None => a_lost.push(ai),
        }
    }

    plan.matched = pairs.len();
    for (ai, bi) in pairs {
        let pa = &a_profiles[ai];
        let pb = &b_profiles[bi];
        let mut errors = false;
        if !pb.preds.equivalent(&pa.preds) {
            errors = true;
            let d = Diagnostic::new(
                Code::MigrationPredicatesChanged,
                format!(
                    "task {}: predicates changed ([{}] -> [{}]); carried join buffers and \
                     in-flight frames hold events the new predicate set never admitted — \
                     state cannot carry over",
                    pb.label,
                    pa.pred_text.join(", "),
                    pb.pred_text.join(", ")
                ),
            );
            match span_for(spans, pb, |i| i.predicates.first().copied()) {
                Some(s) => report.push(d.with_span(s)),
                None => report.push(d),
            }
        }
        if pb.sinks != pa.sinks {
            errors = true;
            let d = Diagnostic::new(
                Code::MigrationSinksChanged,
                format!(
                    "task {}: sink attribution changed {} -> {}; per-query delivered-match \
                     dedup state cannot be re-attributed",
                    pb.label,
                    fmt_queries(&pa.sinks),
                    fmt_queries(&pb.sinks)
                ),
            );
            match span_for(spans, pb, |i| Some(i.all)) {
                Some(s) => report.push(d.with_span(s)),
                None => report.push(d),
            }
        }
        let mode = match pb.window.cmp(&pa.window) {
            std::cmp::Ordering::Less => {
                errors = true;
                let d = Diagnostic::new(
                    Code::MigrationWindowNarrowed,
                    format!(
                        "task {}: window narrowed {} -> {}; carried join buffers would hold \
                         partial matches older than the new window and the carried watermark \
                         would admit stale joins — join buffers and watermarks cannot carry \
                         over",
                        pb.label, pa.window, pb.window
                    ),
                );
                match span_for(spans, pb, |i| i.window) {
                    Some(s) => report.push(d.with_span(s)),
                    None => report.push(d),
                }
                CarryMode::Fresh
            }
            std::cmp::Ordering::Greater => {
                let d = Diagnostic::new(
                    Code::MigrationReplay,
                    format!(
                        "task {}: window widened {} -> {}; join buffers and watermarks carry \
                         over, but events inside the widened horizon were already evicted — \
                         replay the last {} time units to restore completeness",
                        pb.label, pa.window, pb.window, pb.window
                    ),
                );
                match span_for(spans, pb, |i| i.window) {
                    Some(s) => report.push(d.with_span(s)),
                    None => report.push(d),
                }
                CarryMode::Replay
            }
            std::cmp::Ordering::Equal => CarryMode::Carry,
        };
        let mode = if errors { CarryMode::Fresh } else { mode };
        if !errors && mode == CarryMode::Carry {
            report.push(Diagnostic::new(
                Code::MigrationPortable,
                format!(
                    "task {}: state carries over unchanged (join buffers, watermarks, \
                     delivered-match dedup)",
                    pb.label
                ),
            ));
        }
        plan.needs_replay |= mode == CarryMode::Replay;
        plan.actions.push(TaskAction {
            from: Some(pa.task_key),
            to: Some(pb.task_key),
            mode,
            detail: pb.label.clone(),
        });
    }

    for (ai, bi) in moved {
        let pa = &a_profiles[ai];
        let pb = &b_profiles[bi];
        let d = Diagnostic::new(
            Code::MigrationVertexFresh,
            format!(
                "task {} moved N{} -> N{}; join state does not follow a placement change \
                 (in-flight frames address the old node) — the new task starts cold",
                pa.tree, pa.node.0, pb.node.0
            ),
        );
        match span_for(spans, pb, |i| Some(i.all)) {
            Some(s) => report.push(d.with_span(s)),
            None => report.push(d),
        }
        plan.actions.push(TaskAction {
            from: Some(pa.task_key),
            to: Some(pb.task_key),
            mode: CarryMode::Fresh,
            detail: pb.label.clone(),
        });
    }

    for ai in a_lost {
        let pa = &a_profiles[ai];
        let surviving: BTreeSet<QueryId> = pa
            .queries
            .iter()
            .filter(|q| b_queries.contains(q))
            .copied()
            .collect();
        if surviving.is_empty() {
            // All owning queries were removed; covered by MG0257 below.
            plan.actions.push(TaskAction {
                from: Some(pa.task_key),
                to: None,
                mode: CarryMode::Drop,
                detail: pa.label.clone(),
            });
        } else {
            report.push(Diagnostic::new(
                Code::MigrationVertexLost,
                format!(
                    "task {} of surviving {} {} has no correspondent in the new plan; its \
                     join buffers and in-flight frames would be silently dropped",
                    pa.label,
                    if surviving.len() == 1 {
                        "query"
                    } else {
                        "queries"
                    },
                    fmt_queries(&surviving)
                ),
            ));
            plan.actions.push(TaskAction {
                from: Some(pa.task_key),
                to: None,
                mode: CarryMode::Drop,
                detail: pa.label.clone(),
            });
        }
    }

    for (bi, pb) in b_profiles.iter().enumerate() {
        if b_matched[bi] {
            continue;
        }
        let surviving: BTreeSet<QueryId> = pb
            .queries
            .iter()
            .filter(|q| a_queries.contains(q))
            .copied()
            .collect();
        if !surviving.is_empty() {
            let d = Diagnostic::new(
                Code::MigrationVertexFresh,
                format!(
                    "new task {} for surviving {} {} starts cold; matches spanning the \
                     migration point may be missed until the window horizon is replayed",
                    pb.label,
                    if surviving.len() == 1 {
                        "query"
                    } else {
                        "queries"
                    },
                    fmt_queries(&surviving)
                ),
            );
            match span_for(spans, pb, |i| Some(i.all)) {
                Some(s) => report.push(d.with_span(s)),
                None => report.push(d),
            }
        }
        plan.actions.push(TaskAction {
            from: None,
            to: Some(pb.task_key),
            mode: CarryMode::Fresh,
            detail: pb.label.clone(),
        });
    }

    for q in &plan.dropped_queries {
        let tasks = a_profiles.iter().filter(|p| p.queries.contains(q)).count();
        report.push(Diagnostic::new(
            Code::MigrationQueryDropped,
            format!("query {q:?} removed: state of {tasks} task(s) is dropped"),
        ));
    }
    for q in &plan.added_queries {
        let d = Diagnostic::new(
            Code::MigrationQueryAdded,
            format!("query {q:?} added: its tasks start cold"),
        );
        match spans.and_then(|s| s.per_query.get(q)) {
            Some(info) => report.push(d.with_span(info.all)),
            None => report.push(d),
        }
    }

    report.sort();
    plan.safe = !report.has_errors();
    (report, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::prelude::*;

    /// Builds the paper's running workload over a 3-node network, with a
    /// per-query window and predicate knob: `SEQ(AND(C, L), F)` with an
    /// optional unary predicate on the F operator.
    fn make_plan(
        window: Timestamp,
        pred_bound: Option<i64>,
        extra_query: bool,
    ) -> (Vec<Query>, Network, ProjectionTable, MuseGraph) {
        let mut catalog = Catalog::new();
        let c = catalog.add_event_type("C").unwrap();
        let l = catalog.add_event_type("L").unwrap();
        let f = catalog.add_event_type("F").unwrap();
        let network = NetworkBuilder::new(3, 3)
            .node(NodeId(0), [c, f])
            .node(NodeId(1), [c, l])
            .node(NodeId(2), [l])
            .rate(c, 100.0)
            .rate(l, 100.0)
            .rate(f, 1.0)
            .build();
        let pattern = Pattern::seq([
            Pattern::and([Pattern::leaf(c), Pattern::leaf(l)]),
            Pattern::leaf(f),
        ]);
        let mut preds = Vec::new();
        if let Some(b) = pred_bound {
            preds.push(Predicate::unary(
                PrimId(2),
                AttrId(0),
                CmpOp::Gt,
                Value::Int(b),
                0.5,
            ));
        }
        let mut queries = vec![Query::build(QueryId(0), &pattern, preds, window).unwrap()];
        if extra_query {
            let p2 = Pattern::seq([Pattern::leaf(c), Pattern::leaf(f)]);
            queries.push(Query::build(QueryId(1), &p2, Vec::new(), 500).unwrap());
        }
        let workload = Workload::new(catalog, queries.clone()).unwrap();
        let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
        (queries, network, plan.table, plan.merged)
    }

    fn run(
        a: &(Vec<Query>, Network, ProjectionTable, MuseGraph),
        b: &(Vec<Query>, Network, ProjectionTable, MuseGraph),
    ) -> (Report, MigrationPlan) {
        let actx = PlanContext::new(&a.0, &a.1, &a.2);
        let bctx = PlanContext::new(&b.0, &b.1, &b.2);
        verify_migration(&a.3, &actx, &b.3, &bctx, None)
    }

    #[test]
    fn identical_plans_are_portable() {
        let a = make_plan(1000, Some(5), false);
        let b = make_plan(1000, Some(5), false);
        let (report, plan) = run(&a, &b);
        assert!(plan.safe, "{report:?}");
        assert!(!plan.needs_replay);
        assert!(report.has_code(Code::MigrationPortable));
        assert!(!report.has_errors());
        assert!(plan.actions.iter().all(|a| a.mode == CarryMode::Carry));
        assert_eq!(plan.matched, plan.actions.len());
    }

    #[test]
    fn widened_window_needs_replay() {
        let a = make_plan(1000, None, false);
        let b = make_plan(2000, None, false);
        let (report, plan) = run(&a, &b);
        assert!(plan.safe, "{report:?}");
        assert!(plan.needs_replay);
        assert!(report.has_code(Code::MigrationReplay));
        assert!(!report.has_errors());
    }

    #[test]
    fn narrowed_window_is_unsafe() {
        let a = make_plan(1000, None, false);
        let b = make_plan(500, None, false);
        let (report, plan) = run(&a, &b);
        assert!(!plan.safe);
        assert!(report.has_code(Code::MigrationWindowNarrowed));
    }

    #[test]
    fn changed_predicates_are_unsafe() {
        let a = make_plan(1000, Some(5), false);
        let b = make_plan(1000, Some(7), false);
        let (report, plan) = run(&a, &b);
        assert!(!plan.safe);
        assert!(report.has_code(Code::MigrationPredicatesChanged));
    }

    #[test]
    fn added_and_dropped_queries_are_benign() {
        let a = make_plan(1000, None, false);
        let b = make_plan(1000, None, true);
        let (report, plan) = run(&a, &b);
        assert!(plan.safe, "{report:?}");
        assert!(report.has_code(Code::MigrationQueryAdded));
        assert_eq!(plan.added_queries, vec![QueryId(1)]);
        // And the reverse drops the query.
        let (report2, plan2) = run(&b, &a);
        assert!(plan2.safe, "{report2:?}");
        assert!(report2.has_code(Code::MigrationQueryDropped));
        assert_eq!(plan2.dropped_queries, vec![QueryId(1)]);
        assert!(plan2.actions.iter().any(|t| t.mode == CarryMode::Drop));
    }
}
