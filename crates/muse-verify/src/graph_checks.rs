//! Pass 2: graph-level checks — acyclicity, cover well-formedness (Def. 7),
//! combination correctness and redundancy (Defs. 5/6/15), negation-closure
//! (Def. 9), and completeness against the binding space (Def. 8).

use crate::diag::{Code, Diagnostic, Report};
use muse_core::combination::Combination;
use muse_core::graph::{MuseGraph, PlanContext, Vertex};
use muse_core::projection::is_negation_closed;
use muse_core::types::PrimSet;
use std::collections::{HashMap, HashSet};

/// Knobs for the graph- and deployment-level passes.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Run the (enumerative) completeness check of Def. 8. Exponential in
    /// producers per type, so the deploy gate disables it.
    pub check_completeness: bool,
    /// Cap on enumerated bindings before completeness is skipped with
    /// [`Code::CompletenessSkipped`].
    pub binding_limit: usize,
    /// Relative tolerance for the cost-model consistency check
    /// ([`Code::InconsistentCostModel`]).
    pub cost_tolerance: f64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            check_completeness: true,
            binding_limit: 4096,
            cost_tolerance: 1e-6,
        }
    }
}

impl VerifyConfig {
    /// The fast profile used by `muse-runtime::deploy`: structural and
    /// deployment checks only, no binding enumeration.
    pub fn for_deploy() -> Self {
        VerifyConfig {
            check_completeness: false,
            ..VerifyConfig::default()
        }
    }
}

/// Kahn topological sort over the public graph API. Returns `None` when the
/// graph is cyclic — unlike [`MuseGraph::topo_order`], which panics.
pub(crate) fn try_topo_order(graph: &MuseGraph) -> Option<Vec<Vertex>> {
    let verts: Vec<Vertex> = graph.vertices().collect();
    let index: HashMap<Vertex, usize> = verts.iter().enumerate().map(|(i, v)| (*v, i)).collect();
    let mut in_deg = vec![0usize; verts.len()];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); verts.len()];
    for (from, to) in graph.edges() {
        let (f, t) = (index[&from], index[&to]);
        in_deg[t] += 1;
        out[f].push(t);
    }
    let mut queue: Vec<usize> = (0..verts.len()).filter(|&i| in_deg[i] == 0).collect();
    let mut order = Vec::with_capacity(verts.len());
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        order.push(verts[i]);
        for &j in &out[i] {
            in_deg[j] -= 1;
            if in_deg[j] == 0 {
                queue.push(j);
            }
        }
    }
    (order.len() == verts.len()).then_some(order)
}

/// Verifies the structure of a MuSE graph, pushing diagnostics into
/// `report`. Returns `true` when the graph is acyclic and structurally
/// sound — the precondition for the cover-based deployment checks (which
/// would panic or produce nonsense on a malformed graph).
pub fn verify_graph(
    graph: &MuseGraph,
    ctx: &PlanContext<'_>,
    cfg: &VerifyConfig,
    report: &mut Report,
) -> bool {
    let before = report.count(crate::diag::Severity::Error);

    let acyclic = try_topo_order(graph).is_some();
    if !acyclic {
        report.push(Diagnostic::new(
            Code::GraphCycle,
            "the MuSE graph contains a cycle; evaluation order is undefined",
        ));
    }

    check_primitive_placements(graph, ctx, report);
    check_local_structure(graph, ctx, report);
    check_negation_closure(graph, ctx, report);

    let structure_ok = acyclic && report.count(crate::diag::Severity::Error) == before;
    if cfg.check_completeness && structure_ok {
        check_completeness(graph, ctx, cfg, report);
    }
    structure_ok
}

/// Def. 7(i): every `(primitive operator, producing node)` pair of every
/// query must be a vertex of the graph.
fn check_primitive_placements(graph: &MuseGraph, ctx: &PlanContext<'_>, report: &mut Report) {
    for query in ctx.queries {
        for prim in query.prims().iter() {
            let ty = query.prim_type(prim);
            let Some(proj) = ctx.table.id_of(query.id(), PrimSet::single(prim)) else {
                report.push(Diagnostic::new(
                    Code::MissingPrimitiveVertex,
                    format!(
                        "no primitive projection registered for operator {prim:?} of {:?}",
                        query.id()
                    ),
                ));
                continue;
            };
            for node in ctx.network.producers(ty).iter() {
                if !graph.contains_vertex(Vertex::new(proj, node)) {
                    report.push(Diagnostic::new(
                        Code::MissingPrimitiveVertex,
                        format!(
                            "primitive operator {prim:?} of {:?} has no vertex at \
                             producing node {node:?} (Def. 7 requires all producers)",
                            query.id()
                        ),
                    ));
                }
            }
        }
    }
}

/// Def. 7(ii) plus Defs. 5/6/15: sources host generated primitives; each
/// composite vertex's predecessors form a correct, non-redundant
/// combination of proper sub-projections of the same query.
fn check_local_structure(graph: &MuseGraph, ctx: &PlanContext<'_>, report: &mut Report) {
    for v in graph.vertices() {
        let proj = ctx.proj(v.proj);
        let preds = graph.predecessors(v);
        if preds.is_empty() {
            if !proj.is_primitive() {
                report.push(Diagnostic::new(
                    Code::CompositeSource,
                    format!(
                        "vertex ({:?}, {:?}) hosts composite projection {:?} but has \
                         no incoming edges to assemble it from",
                        v.proj, v.node, proj.prims
                    ),
                ));
                continue;
            }
            let prim = proj.prims.iter().next().expect("primitive is non-empty");
            let ty = ctx.query_of(v.proj).prim_type(prim);
            if !ctx.network.generates(v.node, ty) {
                report.push(Diagnostic::new(
                    Code::PrimitiveAtNonProducer,
                    format!(
                        "primitive operator {prim:?} is placed at {:?}, which does not \
                         generate its event type {ty:?}",
                        v.node
                    ),
                ));
            }
            continue;
        }
        let mut pred_sets: Vec<PrimSet> = Vec::new();
        let mut local_ok = true;
        for p in &preds {
            let pp = ctx.proj(p.proj);
            if pp.source != proj.source {
                report.push(Diagnostic::new(
                    Code::CrossQueryEdge,
                    format!(
                        "edge ({:?}, {:?}) -> ({:?}, {:?}) connects projections of \
                         different queries ({:?} vs {:?})",
                        p.proj, p.node, v.proj, v.node, pp.source, proj.source
                    ),
                ));
                local_ok = false;
                continue;
            }
            if !pp.prims.is_proper_subset(proj.prims) {
                report.push(Diagnostic::new(
                    Code::ImproperPredecessor,
                    format!(
                        "predecessor projection {:?} of vertex ({:?}, {:?}) is not a \
                         proper subset of {:?}",
                        pp.prims, v.proj, v.node, proj.prims
                    ),
                ));
                local_ok = false;
                continue;
            }
            if !pred_sets.contains(&pp.prims) {
                pred_sets.push(pp.prims);
            }
        }
        if !local_ok {
            continue;
        }
        let combination = Combination::new(proj.prims, pred_sets);
        if !combination.is_correct() {
            let union = combination
                .predecessors
                .iter()
                .fold(PrimSet::empty(), |acc, p| acc.union(*p));
            report.push(Diagnostic::new(
                Code::IncompleteCombination,
                format!(
                    "predecessors of vertex ({:?}, {:?}) cover {union:?} but the \
                     projection needs {:?} (Defs. 5/6)",
                    v.proj, v.node, proj.prims
                ),
            ));
        } else if combination.is_redundant() {
            report.push(Diagnostic::new(
                Code::RedundantCombination,
                format!(
                    "the combination feeding vertex ({:?}, {:?}) is redundant: some \
                     predecessor can be dropped without losing coverage (Def. 15)",
                    v.proj, v.node
                ),
            ));
        }
    }
}

/// Def. 9: every projection used by the graph must be negation-closed for
/// its query.
fn check_negation_closure(graph: &MuseGraph, ctx: &PlanContext<'_>, report: &mut Report) {
    let mut seen = HashSet::new();
    for v in graph.vertices() {
        if !seen.insert(v.proj) {
            continue;
        }
        let proj = ctx.proj(v.proj);
        let query = ctx.query_of(v.proj);
        if !is_negation_closed(query, proj.prims) {
            report.push(Diagnostic::new(
                Code::NegationNotClosed,
                format!(
                    "projection {:?} over {:?} splits an NSEQ context of {:?}; its \
                     matches cannot be interpreted without the negated operators \
                     (Def. 9)",
                    v.proj,
                    proj.prims,
                    query.id()
                ),
            ));
        }
    }
}

/// Def. 8: the sinks jointly cover every event-type binding of each query.
/// Enumerative — only run on structurally sound, acyclic graphs.
fn check_completeness(
    graph: &MuseGraph,
    ctx: &PlanContext<'_>,
    cfg: &VerifyConfig,
    report: &mut Report,
) {
    if let Err(msg) = graph.check_complete(ctx, cfg.binding_limit) {
        if msg.contains("covered by no sink") {
            report.push(Diagnostic::new(
                Code::IncompleteGraph,
                format!("completeness violated: {msg}"),
            ));
        } else {
            report.push(Diagnostic::new(
                Code::CompletenessSkipped,
                format!(
                    "completeness not decided within binding limit {}: {msg}",
                    cfg.binding_limit
                ),
            ));
        }
    }
}
