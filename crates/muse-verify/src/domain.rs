//! Interval abstract domain for predicate reasoning.
//!
//! The query lints, the deploy checks, and the migration pass all need to
//! answer questions about *sets of attribute values*: is a conjunction of
//! unary predicates satisfiable (MG0101/MG0102)? does one query's predicate
//! set imply another's (MG0109 subsumption)? are two plans' predicate sets
//! semantically equivalent (MG0253 migration safety)? The seed answered the
//! first of these by sampling five candidate points per predicate pair —
//! which is unsound: the pairwise check misses conjunctions that are only
//! *jointly* unsatisfiable (`x >= 5 AND x <= 5 AND x != 5` — every pair is
//! satisfiable, the triple is not), and sampling can never certify
//! implication at all.
//!
//! This module replaces sampling with a small abstract interpretation. Each
//! `(prim, attr)` pair is abstracted by an [`AbsAttr`]: a *type mask*
//! (which [`Value`] variants remain possible), a numeric [`Interval`] with
//! open/closed bounds, a finite set of numeric punctures (`!=` constants),
//! and a string-side summary (pinned equality, excluded strings, ordered
//! string constraints). The domain supports meet (`∩`, via
//! [`AbsAttr::constrain`]), emptiness, and ordering (`⊑`, via
//! [`AbsAttr::le`]) — enough for sound contradiction detection and a sound
//! (conservative) implication check.
//!
//! Semantics follow [`CmpOp::test`] exactly: incomparable values fail every
//! comparison except `Ne`. So `x < 5` excludes strings (a string is
//! incomparable with `5`, and `Lt.test(None) = false`), while `x != 5`
//! admits them (`Ne.test(None) = true`). Missing attributes fail every
//! predicate, so the abstraction describes the values of an attribute that
//! is present.

use muse_core::event::Value;
use muse_core::query::{CmpOp, Predicate, PredicateExpr, Query};
use muse_core::types::{AttrId, PrimId};
use std::collections::{BTreeMap, BTreeSet};

/// A numeric interval with independently open or closed endpoints.
///
/// `lo = -inf` / `hi = +inf` encode unbounded sides (the open flags are
/// irrelevant at infinities but kept `false` for canonical form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// `true` if the lower bound is excluded (`(lo, …`).
    pub lo_open: bool,
    /// Upper bound.
    pub hi: f64,
    /// `true` if the upper bound is excluded (`…, hi)`).
    pub hi_open: bool,
}

impl Interval {
    /// The full real line `(-inf, +inf)`.
    pub fn top() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            lo_open: false,
            hi: f64::INFINITY,
            hi_open: false,
        }
    }

    /// The single point `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self {
            lo: v,
            lo_open: false,
            hi: v,
            hi_open: false,
        }
    }

    /// The interval of values satisfying `x OP v`, or `None` for `Ne`
    /// (a puncture, not an interval — callers track those separately).
    pub fn from_cmp(op: CmpOp, v: f64) -> Option<Self> {
        let mut iv = Self::top();
        match op {
            CmpOp::Eq => iv = Self::point(v),
            CmpOp::Lt => {
                iv.hi = v;
                iv.hi_open = true;
            }
            CmpOp::Le => iv.hi = v,
            CmpOp::Gt => {
                iv.lo = v;
                iv.lo_open = true;
            }
            CmpOp::Ge => iv.lo = v,
            CmpOp::Ne => return None,
        }
        Some(iv)
    }

    /// `true` if no real number lies in the interval. A NaN bound (from a
    /// NaN predicate constant) makes the interval empty: no value compares
    /// against NaN.
    pub fn is_empty(&self) -> bool {
        if self.lo.is_nan() || self.hi.is_nan() {
            return true;
        }
        self.lo > self.hi || (self.lo == self.hi && (self.lo_open || self.hi_open))
    }

    /// `true` if `v` lies in the interval.
    pub fn contains(&self, v: f64) -> bool {
        let lo_ok = v > self.lo || (v == self.lo && !self.lo_open);
        let hi_ok = v < self.hi || (v == self.hi && !self.hi_open);
        lo_ok && hi_ok
    }

    /// Intersection (`∩`): the tightest bounds from either side.
    pub fn meet(&self, other: &Self) -> Self {
        let (lo, lo_open) = match self.lo.partial_cmp(&other.lo) {
            Some(std::cmp::Ordering::Greater) => (self.lo, self.lo_open),
            Some(std::cmp::Ordering::Less) => (other.lo, other.lo_open),
            _ => (self.lo, self.lo_open || other.lo_open),
        };
        let (hi, hi_open) = match self.hi.partial_cmp(&other.hi) {
            Some(std::cmp::Ordering::Less) => (self.hi, self.hi_open),
            Some(std::cmp::Ordering::Greater) => (other.hi, other.hi_open),
            _ => (self.hi, self.hi_open || other.hi_open),
        };
        // Propagate NaN bounds so is_empty stays true.
        let lo = if self.lo.is_nan() || other.lo.is_nan() {
            f64::NAN
        } else {
            lo
        };
        let hi = if self.hi.is_nan() || other.hi.is_nan() {
            f64::NAN
        } else {
            hi
        };
        Self {
            lo,
            lo_open,
            hi,
            hi_open,
        }
    }

    /// Convex hull (`∪` over-approximation): the loosest bounds.
    pub fn join(&self, other: &Self) -> Self {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let (lo, lo_open) = match self.lo.partial_cmp(&other.lo) {
            Some(std::cmp::Ordering::Less) => (self.lo, self.lo_open),
            Some(std::cmp::Ordering::Greater) => (other.lo, other.lo_open),
            _ => (self.lo, self.lo_open && other.lo_open),
        };
        let (hi, hi_open) = match self.hi.partial_cmp(&other.hi) {
            Some(std::cmp::Ordering::Greater) => (self.hi, self.hi_open),
            Some(std::cmp::Ordering::Less) => (other.hi, other.hi_open),
            _ => (self.hi, self.hi_open && other.hi_open),
        };
        Self {
            lo,
            lo_open,
            hi,
            hi_open,
        }
    }

    /// Domain ordering (`⊑`): `true` if every value in `self` lies in
    /// `other`.
    pub fn le(&self, other: &Self) -> bool {
        if self.is_empty() {
            return true;
        }
        if other.is_empty() {
            return false;
        }
        let lo_ok = other.lo < self.lo || (other.lo == self.lo && (!other.lo_open || self.lo_open));
        let hi_ok = other.hi > self.hi || (other.hi == self.hi && (!other.hi_open || self.hi_open));
        lo_ok && hi_ok
    }
}

/// Which [`Value`] variants remain possible for an attribute. Int and Float
/// compare numerically against each other, so they share the `NUM` bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeMask(u8);

impl TypeMask {
    /// Numeric values (Int or Float).
    pub const NUM: u8 = 0b01;
    /// String values.
    pub const STR: u8 = 0b10;

    /// All variants possible.
    pub fn top() -> Self {
        Self(Self::NUM | Self::STR)
    }

    /// `true` if numeric values are still possible.
    pub fn has_num(self) -> bool {
        self.0 & Self::NUM != 0
    }

    /// `true` if string values are still possible.
    pub fn has_str(self) -> bool {
        self.0 & Self::STR != 0
    }

    /// Removes a variant bit.
    pub fn remove(&mut self, bit: u8) {
        self.0 &= !bit;
    }

    /// `true` if `self`'s possible variants are a subset of `other`'s.
    pub fn subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }
}

/// Abstract value of one `(prim, attr)` pair under a conjunction of unary
/// predicates: the set of attribute values satisfying all of them, split
/// into a numeric side and a string side gated by a [`TypeMask`].
#[derive(Debug, Clone, PartialEq)]
pub struct AbsAttr {
    /// Variants still possible.
    pub mask: TypeMask,
    /// Numeric side: the surviving interval.
    pub num: Interval,
    /// Numeric side: punctures from `!=` constants (sorted, deduped bits).
    pub num_ne: Vec<u64>,
    /// String side: pinned value from `= "s"` (conflicting pins ⇒ bottom,
    /// encoded by removing `STR` from the mask).
    pub str_eq: Option<String>,
    /// String side: excluded values from `!= "s"`.
    pub str_ne: BTreeSet<String>,
    /// String side: ordered constraints (`< "s"` etc.), kept symbolically.
    pub str_ord: Vec<(CmpOp, String)>,
}

impl Default for AbsAttr {
    fn default() -> Self {
        Self::top()
    }
}

impl AbsAttr {
    /// No constraints: any value possible.
    pub fn top() -> Self {
        Self {
            mask: TypeMask::top(),
            num: Interval::top(),
            num_ne: Vec::new(),
            str_eq: None,
            str_ne: BTreeSet::new(),
            str_ord: Vec::new(),
        }
    }

    /// Meets the abstraction with `x OP value` (one unary predicate).
    pub fn constrain(&mut self, op: CmpOp, value: &Value) {
        match value {
            Value::Int(_) | Value::Float(_) => {
                let v = match value {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    Value::Str(_) => unreachable!(),
                };
                if op == CmpOp::Ne {
                    // Strings are incomparable with v: Ne.test(None) = true,
                    // so the string side is untouched.
                    if !v.is_nan() && !self.num_ne.contains(&v.to_bits()) {
                        self.num_ne.push(v.to_bits());
                        self.num_ne.sort_unstable();
                    }
                } else {
                    // Every other comparison fails on incomparable values,
                    // so strings are ruled out entirely.
                    self.mask.remove(TypeMask::STR);
                    match Interval::from_cmp(op, v) {
                        Some(iv) => self.num = self.num.meet(&iv),
                        None => unreachable!("Ne handled above"),
                    }
                }
            }
            Value::Str(s) => match op {
                CmpOp::Ne => {
                    // Numbers are incomparable with "s": they satisfy Ne.
                    self.str_ne.insert(s.clone());
                }
                CmpOp::Eq => {
                    self.mask.remove(TypeMask::NUM);
                    match &self.str_eq {
                        Some(prev) if prev != s => self.mask.remove(TypeMask::STR),
                        _ => self.str_eq = Some(s.clone()),
                    }
                }
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    self.mask.remove(TypeMask::NUM);
                    if !self.str_ord.contains(&(op, s.clone())) {
                        self.str_ord.push((op, s.clone()));
                    }
                }
            },
        }
    }

    /// `true` if the numeric side admits at least one value.
    fn num_nonempty(&self) -> bool {
        if !self.mask.has_num() || self.num.is_empty() {
            return false;
        }
        // A finite puncture set can only exhaust a single-point interval.
        if self.num.lo == self.num.hi {
            return !self.num_ne.contains(&self.num.lo.to_bits());
        }
        true
    }

    /// `true` if the string side admits at least one value.
    fn str_nonempty(&self) -> bool {
        if !self.mask.has_str() {
            return false;
        }
        match &self.str_eq {
            Some(s) => {
                !self.str_ne.contains(s)
                    && self
                        .str_ord
                        .iter()
                        .all(|(op, bound)| op.test(Some(s.as_str().cmp(bound.as_str()))))
            }
            // Without a pinned value, finitely many exclusions and a
            // conjunction of order constraints can only be unsatisfiable if
            // the order constraints conflict; check the interval they induce
            // over strings (lexicographic order is dense and unbounded
            // above, so only lower-vs-upper conflicts matter).
            None => {
                let mut lo: Option<(&str, bool)> = None; // (bound, open)
                let mut hi: Option<(&str, bool)> = None;
                for (op, s) in &self.str_ord {
                    match op {
                        CmpOp::Gt | CmpOp::Ge => {
                            let open = *op == CmpOp::Gt;
                            if lo.is_none_or(|(b, o)| {
                                s.as_str() > b || (s.as_str() == b && open && !o)
                            }) {
                                lo = Some((s, open));
                            }
                        }
                        CmpOp::Lt | CmpOp::Le => {
                            let open = *op == CmpOp::Lt;
                            if hi.is_none_or(|(b, o)| {
                                s.as_str() < b || (s.as_str() == b && open && !o)
                            }) {
                                hi = Some((s, open));
                            }
                        }
                        _ => {}
                    }
                }
                match (lo, hi) {
                    (Some((l, lo_open)), Some((h, hi_open))) => {
                        // Lexicographic order is dense *upward* (append a
                        // character) but between l and h there is always a
                        // string unless h <= l, or h == l with an open end.
                        l < h || (l == h && !lo_open && !hi_open)
                    }
                    _ => true,
                }
            }
        }
    }

    /// `true` if no [`Value`] satisfies the accumulated constraints.
    pub fn is_empty(&self) -> bool {
        !self.num_nonempty() && !self.str_nonempty()
    }

    /// Domain ordering (`⊑`): `true` if every value admitted by `self` is
    /// admitted by `other`. Conservative: `false` answers may be imprecise
    /// (never the `true` ones), which keeps implication-based lints sound.
    pub fn le(&self, other: &Self) -> bool {
        if self.is_empty() {
            return true;
        }
        if self.num_nonempty() {
            if !other.mask.has_num() {
                return false;
            }
            if !self.num.le(&other.num) {
                return false;
            }
            for p in &other.num_ne {
                if self.num.contains(f64::from_bits(*p)) && !self.num_ne.contains(p) {
                    return false;
                }
            }
        }
        if self.str_nonempty() {
            if !other.mask.has_str() {
                return false;
            }
            match (&self.str_eq, &other.str_eq) {
                (_, None) => {}
                (Some(a), Some(b)) if a == b => {}
                _ => return false,
            }
            for s in &other.str_ne {
                let excluded = self.str_ne.contains(s)
                    || self.str_eq.as_ref().is_some_and(|e| e != s)
                    || self
                        .str_ord
                        .iter()
                        .any(|(op, b)| !op.test(Some(s.as_str().cmp(b.as_str()))));
                if !excluded {
                    return false;
                }
            }
            for (op, s) in &other.str_ord {
                let implied = self
                    .str_ord
                    .iter()
                    .any(|(so, sb)| so == op && sb == s || implies_ord(*so, sb, *op, s))
                    || self
                        .str_eq
                        .as_ref()
                        .is_some_and(|e| op.test(Some(e.as_str().cmp(s.as_str()))));
                if !implied {
                    return false;
                }
            }
        }
        true
    }
}

/// `true` if `x OP_A a` implies `x OP_B b` over strings (same-direction
/// bound strengthening only; conservative).
fn implies_ord(op_a: CmpOp, a: &str, op_b: CmpOp, b: &str) -> bool {
    match (op_a, op_b) {
        (CmpOp::Lt, CmpOp::Lt) | (CmpOp::Le, CmpOp::Le) | (CmpOp::Le, CmpOp::Lt) => a < b,
        (CmpOp::Lt, CmpOp::Le) => a <= b,
        (CmpOp::Gt, CmpOp::Gt) | (CmpOp::Ge, CmpOp::Ge) | (CmpOp::Ge, CmpOp::Gt) => a > b,
        (CmpOp::Gt, CmpOp::Ge) => a >= b,
        _ => false,
    }
}

/// Abstraction of a full predicate set: per-`(prim, attr)` unary
/// abstractions plus the residual non-unary predicates kept in canonical
/// textual form (binary predicates are compared syntactically — sound for
/// equivalence and for the superset direction of implication).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PredAbstract {
    /// Unary constraints folded per `(prim, attr)`.
    pub attrs: BTreeMap<(PrimId, AttrId), AbsAttr>,
    /// Canonical renderings of the non-unary (binary) predicates.
    pub other: BTreeSet<String>,
}

impl PredAbstract {
    /// Folds a predicate slice into the abstraction.
    pub fn from_predicates(preds: &[Predicate]) -> Self {
        let mut abs = Self::default();
        for p in preds {
            abs.add(p);
        }
        abs
    }

    /// Folds the predicate subset of `query` selected by `indices`.
    pub fn from_indices(query: &Query, indices: &[usize]) -> Self {
        let mut abs = Self::default();
        for &i in indices {
            if let Some(p) = query.predicates().get(i) {
                abs.add(p);
            }
        }
        abs
    }

    /// Adds one predicate to the abstraction.
    pub fn add(&mut self, p: &Predicate) {
        match &p.expr {
            PredicateExpr::UnaryConst {
                prim,
                attr,
                op,
                value,
            } => {
                self.attrs
                    .entry((*prim, *attr))
                    .or_default()
                    .constrain(*op, value);
            }
            PredicateExpr::BinaryAttr {
                left_prim,
                left_attr,
                op,
                right_prim,
                right_attr,
            } => {
                // Canonical orientation: smaller (prim, attr) on the left.
                let (l, o, r) = if (left_prim, left_attr) <= (right_prim, right_attr) {
                    ((*left_prim, *left_attr), *op, (*right_prim, *right_attr))
                } else {
                    (
                        (*right_prim, *right_attr),
                        flip_op(*op),
                        (*left_prim, *left_attr),
                    )
                };
                self.other.insert(format!(
                    "p{}.a{} {} p{}.a{}",
                    l.0 .0,
                    l.1 .0,
                    o.symbol(),
                    r.0 .0,
                    r.1 .0
                ));
            }
        }
    }

    /// The first `(prim, attr)` whose accumulated constraints admit no
    /// value, if any — i.e. the witness that the conjunction is
    /// unsatisfiable.
    pub fn unsat_attr(&self) -> Option<(PrimId, AttrId)> {
        self.attrs
            .iter()
            .find(|(_, a)| a.is_empty())
            .map(|(k, _)| *k)
    }

    /// `true` if `self` (the stricter set) implies `weaker`: every
    /// assignment satisfying `self` satisfies `weaker`. Conservative.
    pub fn implies(&self, weaker: &Self) -> bool {
        // Unsatisfiable implies anything.
        if self.unsat_attr().is_some() {
            return true;
        }
        // Every binary predicate of the weaker set must appear verbatim.
        if !weaker.other.is_subset(&self.other) {
            return false;
        }
        // Every unary constraint of the weaker set must be implied by the
        // stricter one on the same (prim, attr); missing entries in self
        // mean top, which only implies top.
        for (key, w) in &weaker.attrs {
            match self.attrs.get(key) {
                Some(s) => {
                    if !s.le(w) {
                        return false;
                    }
                }
                None => {
                    if !AbsAttr::top().le(w) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// `true` if the two sets are semantically equivalent (mutual
    /// implication). Reordered or syntactically redundant predicate lists
    /// compare equal; genuinely different constraints do not.
    pub fn equivalent(&self, other: &Self) -> bool {
        self.implies(other) && other.implies(self)
    }
}

/// Mirrors the left/right swap of a binary comparison.
fn flip_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unary(op: CmpOp, v: Value) -> Predicate {
        Predicate::unary(PrimId(0), AttrId(0), op, v, 0.5)
    }

    fn abs(preds: &[(CmpOp, Value)]) -> AbsAttr {
        let mut a = AbsAttr::top();
        for (op, v) in preds {
            a.constrain(*op, v);
        }
        a
    }

    #[test]
    fn interval_meet_open_closed() {
        let a = Interval::from_cmp(CmpOp::Gt, 5.0).unwrap();
        let b = Interval::from_cmp(CmpOp::Lt, 5.0).unwrap();
        assert!(a.meet(&b).is_empty());
        let c = Interval::from_cmp(CmpOp::Ge, 5.0).unwrap();
        let d = Interval::from_cmp(CmpOp::Le, 5.0).unwrap();
        let point = c.meet(&d);
        assert!(!point.is_empty());
        assert!(point.contains(5.0));
        assert!(!point.contains(5.1));
        // Mixed open/closed at the same bound is empty.
        assert!(a.meet(&d).is_empty());
    }

    #[test]
    fn interval_ordering() {
        let narrow = Interval::from_cmp(CmpOp::Gt, 5.0).unwrap();
        let wide = Interval::from_cmp(CmpOp::Ge, 5.0).unwrap();
        assert!(narrow.le(&wide));
        assert!(!wide.le(&narrow));
        assert!(narrow.le(&Interval::top()));
        let joined = narrow.join(&Interval::from_cmp(CmpOp::Le, 2.0).unwrap());
        assert!(narrow.le(&joined));
        assert!(Interval::point(1.0).le(&joined));
    }

    #[test]
    fn pairwise_satisfiable_jointly_empty() {
        // x >= 5 AND x <= 5 AND x != 5 — the sampling-era soundness hole.
        let a = abs(&[
            (CmpOp::Ge, Value::Int(5)),
            (CmpOp::Le, Value::Int(5)),
            (CmpOp::Ne, Value::Int(5)),
        ]);
        assert!(a.is_empty());
        // Every proper pair is satisfiable.
        assert!(!abs(&[(CmpOp::Ge, Value::Int(5)), (CmpOp::Le, Value::Int(5))]).is_empty());
        assert!(!abs(&[(CmpOp::Ge, Value::Int(5)), (CmpOp::Ne, Value::Int(5))]).is_empty());
        assert!(!abs(&[(CmpOp::Le, Value::Int(5)), (CmpOp::Ne, Value::Int(5))]).is_empty());
    }

    #[test]
    fn open_interval_contradiction() {
        let a = abs(&[(CmpOp::Gt, Value::Int(5)), (CmpOp::Lt, Value::Int(5))]);
        assert!(a.is_empty());
        let b = abs(&[(CmpOp::Gt, Value::Float(5.0)), (CmpOp::Le, Value::Int(5))]);
        assert!(b.is_empty());
        let c = abs(&[(CmpOp::Ge, Value::Int(5)), (CmpOp::Le, Value::Int(5))]);
        assert!(!c.is_empty());
    }

    #[test]
    fn ne_keeps_strings_alive() {
        // x != 5 admits any string (Ne.test(None) = true) …
        let a = abs(&[
            (CmpOp::Eq, Value::Str("up".into())),
            (CmpOp::Ne, Value::Int(5)),
        ]);
        assert!(!a.is_empty());
        // … but x < 5 does not.
        let b = abs(&[
            (CmpOp::Eq, Value::Str("up".into())),
            (CmpOp::Lt, Value::Int(5)),
        ]);
        assert!(b.is_empty());
    }

    #[test]
    fn string_constraints() {
        let conflict = abs(&[
            (CmpOp::Eq, Value::Str("up".into())),
            (CmpOp::Eq, Value::Str("down".into())),
        ]);
        assert!(conflict.is_empty());
        let punct = abs(&[
            (CmpOp::Eq, Value::Str("up".into())),
            (CmpOp::Ne, Value::Str("up".into())),
        ]);
        assert!(punct.is_empty());
        let ord = abs(&[
            (CmpOp::Gt, Value::Str("m".into())),
            (CmpOp::Lt, Value::Str("d".into())),
        ]);
        assert!(ord.is_empty());
        let ord_ok = abs(&[
            (CmpOp::Gt, Value::Str("d".into())),
            (CmpOp::Lt, Value::Str("m".into())),
        ]);
        assert!(!ord_ok.is_empty());
    }

    #[test]
    fn abs_attr_ordering() {
        let strict = abs(&[(CmpOp::Gt, Value::Int(10)), (CmpOp::Ne, Value::Int(12))]);
        let loose = abs(&[(CmpOp::Gt, Value::Int(5))]);
        assert!(strict.le(&loose));
        assert!(!loose.le(&strict));
        // The puncture direction: other excludes 12, self must too.
        let unpunctured = abs(&[(CmpOp::Gt, Value::Int(10))]);
        let punctured = abs(&[(CmpOp::Gt, Value::Int(10)), (CmpOp::Ne, Value::Int(12))]);
        assert!(punctured.le(&unpunctured));
        assert!(!unpunctured.le(&punctured));
    }

    #[test]
    fn pred_abstract_equivalence_modulo_order_and_redundancy() {
        let a = PredAbstract::from_predicates(&[
            unary(CmpOp::Ge, Value::Int(5)),
            unary(CmpOp::Lt, Value::Int(10)),
        ]);
        let b = PredAbstract::from_predicates(&[
            unary(CmpOp::Lt, Value::Int(10)),
            unary(CmpOp::Ge, Value::Int(5)),
            // Redundant: already implied.
            unary(CmpOp::Ge, Value::Int(5)),
        ]);
        assert!(a.equivalent(&b));
        let c = PredAbstract::from_predicates(&[
            unary(CmpOp::Ge, Value::Int(6)),
            unary(CmpOp::Lt, Value::Int(10)),
        ]);
        assert!(c.implies(&a));
        assert!(!a.implies(&c));
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn pred_abstract_binary_canonical() {
        let p = Predicate::binary(
            (PrimId(1), AttrId(0)),
            CmpOp::Lt,
            (PrimId(0), AttrId(0)),
            0.5,
        );
        let q = Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Gt,
            (PrimId(1), AttrId(0)),
            0.5,
        );
        let a = PredAbstract::from_predicates(std::slice::from_ref(&p));
        let b = PredAbstract::from_predicates(std::slice::from_ref(&q));
        assert!(a.equivalent(&b));
        let r = Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Lt,
            (PrimId(1), AttrId(0)),
            0.5,
        );
        let c = PredAbstract::from_predicates(std::slice::from_ref(&r));
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn unsat_attr_names_the_witness() {
        let preds = [
            Predicate::unary(PrimId(1), AttrId(2), CmpOp::Gt, Value::Int(5), 0.5),
            Predicate::unary(PrimId(1), AttrId(2), CmpOp::Lt, Value::Int(5), 0.5),
            Predicate::unary(PrimId(0), AttrId(0), CmpOp::Ge, Value::Int(0), 0.5),
        ];
        let abs = PredAbstract::from_predicates(&preds);
        assert_eq!(abs.unsat_attr(), Some((PrimId(1), AttrId(2))));
    }

    #[test]
    fn nan_constant_is_empty() {
        let a = abs(&[(CmpOp::Lt, Value::Float(f64::NAN))]);
        assert!(a.is_empty());
    }
}
