//! # muse-verify
//!
//! Static verification of MuSE queries, graphs, and deployments, run before
//! any event flows. Four passes mirror the paper's correctness stack:
//!
//! 1. **Query lints** ([`query_lints`]): contradictory or unsatisfiable
//!    predicates (decided soundly in the [`domain`] interval abstract
//!    domain), zero/absent windows, duplicate event types, NSEQ scoping.
//! 2. **Graph checks** ([`graph_checks`]): acyclicity, cover
//!    well-formedness (Def. 7), combination correctness and redundancy
//!    (Defs. 5/6/15), negation-closure (Def. 9), completeness (Def. 8).
//! 3. **Deployment checks** ([`deploy_checks`]): input reachability under
//!    `Γ = (N, f, r)`, cost-model consistency of edge weights (§4.4), and
//!    sink/orphan structure.
//! 4. **Migration safety** ([`migrate`]): a plan-diff pass deciding whether
//!    snapshot state taken under one deployment can be mapped into another
//!    (the `MG025x` family), shipped as a typed [`MigrationPlan`] that
//!    `muse-runtime`'s `checkpoint::restore_mapped` enforces.
//!
//! Findings are structured [`Diagnostic`]s with stable `MGxxxx` codes,
//! severities, and source spans, collected into a [`Report`] with JSON and
//! pretty renderers. `muse-runtime::deploy` calls [`verify_for_deploy`]
//! fail-fast and refuses any plan whose report [`Report::has_errors`]; the
//! `muse-verify` CLI binary exposes the same checks over SASE query files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod deploy_checks;
pub mod diag;
pub mod domain;
pub mod graph_checks;
pub mod migrate;
pub mod query_lints;

pub use deploy_checks::verify_deployment;
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use domain::{AbsAttr, Interval, PredAbstract, TypeMask};
pub use graph_checks::{verify_graph, VerifyConfig};
pub use migrate::{
    verify_migration, CarryMode, MigrationPlan, MigrationSpans, QuerySpanInfo, TaskAction, TaskKey,
};
pub use query_lints::{lint_query, lint_query_text, lint_workload};

use muse_core::graph::{MuseGraph, PlanContext};

/// Runs all three passes over a plan: lints every query of the context,
/// verifies the graph structure, and — when the structure is sound — the
/// deployment-level properties. The returned report is sorted errors-first.
pub fn verify_plan(graph: &MuseGraph, ctx: &PlanContext<'_>, cfg: &VerifyConfig) -> Report {
    let mut report = Report::new();
    for query in ctx.queries {
        lint_query(query, None, &mut report);
    }
    lint_workload(ctx.queries, &mut report);
    let structure_ok = verify_graph(graph, ctx, cfg, &mut report);
    if structure_ok {
        verify_deployment(graph, ctx, cfg, &mut report);
    }
    report.sort();
    report
}

/// The fail-fast profile used by `muse-runtime::deploy`: all structural and
/// deployment checks, but no enumerative completeness pass (which is
/// exponential and belongs in validation, not on the deploy path).
pub fn verify_for_deploy(graph: &MuseGraph, ctx: &PlanContext<'_>) -> Report {
    verify_plan(graph, ctx, &VerifyConfig::for_deploy())
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::prelude::*;

    /// The paper's running example verifies clean end to end.
    #[test]
    fn amuse_plan_is_clean() {
        let mut catalog = Catalog::new();
        let c = catalog.add_event_type("C").unwrap();
        let l = catalog.add_event_type("L").unwrap();
        let f = catalog.add_event_type("F").unwrap();
        let network = NetworkBuilder::new(3, 3)
            .node(NodeId(0), [c, f])
            .node(NodeId(1), [c, l])
            .node(NodeId(2), [l])
            .rate(c, 100.0)
            .rate(l, 100.0)
            .rate(f, 1.0)
            .build();
        let pattern = Pattern::seq([
            Pattern::and([Pattern::leaf(c), Pattern::leaf(l)]),
            Pattern::leaf(f),
        ]);
        let query = Query::build(QueryId(0), &pattern, vec![], 1_000).unwrap();
        let plan = amuse(&query, &network, &AMuseConfig::default()).unwrap();
        let queries = [query];
        let ctx = muse_core::graph::PlanContext::new(&queries, &network, &plan.table);
        let report = verify_plan(&plan.graph, &ctx, &VerifyConfig::default());
        assert!(report.is_clean(), "{report}");
    }
}
