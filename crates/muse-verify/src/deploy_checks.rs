//! Pass 3: deployment-level checks under `Γ = (N, f, r)` — input
//! reachability at assigned nodes, cost-model consistency of the edge
//! weights, and sink/orphan structure.

use crate::diag::{Code, Diagnostic, Report};
use crate::graph_checks::{try_topo_order, VerifyConfig};
use muse_core::cost::projection_output_rate;
use muse_core::graph::{MuseGraph, PlanContext};
use muse_core::types::{NodeId, NodeSet, PrimId, QueryId};
use std::collections::{HashMap, HashSet};

/// Verifies deployment-level properties of an (already structurally sound)
/// graph. Call after [`crate::verify_graph`] returned `true`; on a cyclic
/// graph this function returns without checking anything.
pub fn verify_deployment(
    graph: &MuseGraph,
    ctx: &PlanContext<'_>,
    cfg: &VerifyConfig,
    report: &mut Report,
) {
    let Some(order) = try_topo_order(graph) else {
        return; // MG0201 already reported by the graph pass.
    };
    check_rates(graph, ctx, report);
    check_reachability(graph, ctx, &order, report);
    check_cost_model(graph, ctx, cfg, report);
    check_sinks_and_orphans(graph, ctx, report);
}

/// MG0303: every projection placed by the graph must have a finite,
/// non-negative output rate under the context's rate assignment.
fn check_rates(graph: &MuseGraph, ctx: &PlanContext<'_>, report: &mut Report) {
    let mut seen = HashSet::new();
    for v in graph.vertices() {
        if !seen.insert(v.proj) {
            continue;
        }
        let rate = ctx.rate_of(v.proj);
        if !rate.is_finite() || rate < 0.0 {
            report.push(Diagnostic::new(
                Code::NonFiniteRate,
                format!(
                    "projection {:?} has output rate {rate} under the deployment's \
                     rate assignment; edge weights are meaningless",
                    v.proj
                ),
            ));
        }
    }
}

/// MG0301: every positive input of every vertex's projection must actually
/// receive events at the vertex's node. Unlike [`MuseGraph::covers`], the
/// propagation gates source vertices on `f`: a primitive placed at a node
/// that does not generate its type contributes nothing.
fn check_reachability(
    graph: &MuseGraph,
    ctx: &PlanContext<'_>,
    order: &[muse_core::graph::Vertex],
    report: &mut Report,
) {
    type Origins = HashMap<(QueryId, PrimId), NodeSet>;
    let mut origins: HashMap<muse_core::graph::Vertex, Origins> = HashMap::new();
    for &v in order {
        let proj = ctx.proj(v.proj);
        let query = ctx.query_of(v.proj);
        let preds = graph.predecessors(v);
        let mut mine: Origins = HashMap::new();
        if preds.is_empty() {
            if proj.is_primitive() {
                let prim = proj.prims.iter().next().expect("primitive is non-empty");
                if ctx.network.generates(v.node, query.prim_type(prim)) {
                    mine.insert((proj.source, prim), NodeSet::single(v.node));
                }
            }
        } else {
            for p in preds {
                for (&key, &nodes) in origins.get(&p).into_iter().flatten() {
                    let entry = mine.entry(key).or_insert_with(NodeSet::empty);
                    *entry = entry.union(nodes);
                }
            }
        }
        for prim in proj.positive_prims(query).iter() {
            let reached = mine
                .get(&(proj.source, prim))
                .map(|n| !n.is_empty())
                .unwrap_or(false);
            if !reached {
                report.push(Diagnostic::new(
                    Code::UnreachableInput,
                    format!(
                        "input {prim:?} of projection {:?} receives no events at \
                         node {:?}: no generating source vertex reaches it",
                        v.proj, v.node
                    ),
                ));
            }
        }
        origins.insert(v, mine);
    }
}

/// MG0302: the deployed edge weights must be recomputable from the §4.4
/// output-rate model — `r̂(p) · |𝔄(v)| / |V_{v,n'}|` for network edges, 0
/// for local ones — and, absent multi-query stream sharing, sum to `c(G)`.
fn check_cost_model(
    graph: &MuseGraph,
    ctx: &PlanContext<'_>,
    cfg: &VerifyConfig,
    report: &mut Report,
) {
    let verts: Vec<_> = graph.vertices().collect();
    let index: HashMap<_, usize> = verts.iter().enumerate().map(|(i, v)| (*v, i)).collect();
    let covers = graph.covers(ctx);
    let weights = graph.edge_weights(ctx);

    // Successor multiplicity per (sender, target node) for the sharing term.
    let mut succs_at: HashMap<(usize, NodeId), f64> = HashMap::new();
    for (from, to) in graph.edges() {
        *succs_at.entry((index[&from], to.node)).or_insert(0.0) += 1.0;
    }

    let mut flagged = HashSet::new();
    let mut total = 0.0;
    for ((from, to), weight) in &weights {
        total += weight;
        let i = index[from];
        let expected = if to.node == from.node {
            0.0
        } else {
            let proj = ctx.proj(from.proj);
            let query = ctx.query_of(from.proj);
            let model_rate = projection_output_rate(proj, query, ctx.network);
            model_rate * covers[i].count() / succs_at[&(i, to.node)]
        };
        if !close(*weight, expected, cfg.cost_tolerance) && flagged.insert(from.proj) {
            report.push(Diagnostic::new(
                Code::InconsistentCostModel,
                format!(
                    "edge ({:?}, {:?}) -> ({:?}, {:?}) weighs {weight:.6} but the \
                     output-rate model gives {expected:.6}; the deployment's rates \
                     diverge from r̂ = σ·rates(inputs)",
                    from.proj, from.node, to.proj, to.node
                ),
            ));
        }
    }
    if ctx.shared.is_none() {
        let cost = graph.cost(ctx);
        if !close(total, cost, cfg.cost_tolerance) {
            report.push(Diagnostic::new(
                Code::InconsistentCostModel,
                format!(
                    "edge weights sum to {total:.6} but c(G) = {cost:.6}; the cost \
                     decomposition over edges is broken"
                ),
            ));
        }
    }
}

/// MG0304 / MG0305: every vertex output must flow somewhere, and every query
/// must keep at least one sink hosting the full projection.
fn check_sinks_and_orphans(graph: &MuseGraph, ctx: &PlanContext<'_>, report: &mut Report) {
    for v in graph.vertices() {
        let proj = ctx.proj(v.proj);
        let query = ctx.query_of(v.proj);
        if graph.successors(v).is_empty() && !proj.is_full_query(query) {
            report.push(Diagnostic::new(
                Code::OrphanVertex,
                format!(
                    "vertex ({:?}, {:?}) over {:?} has no successors and is not a \
                     sink; its matches are computed and then dropped",
                    v.proj, v.node, proj.prims
                ),
            ));
        }
    }
    for query in ctx.queries {
        let has_sink = graph.vertices().any(|v| {
            let p = ctx.proj(v.proj);
            p.source == query.id() && p.is_full_query(query)
        });
        if !has_sink {
            report.push(Diagnostic::new(
                Code::MissingSink,
                format!(
                    "{:?} has no vertex hosting the full query projection; its \
                     matches are never assembled",
                    query.id()
                ),
            ));
        }
    }
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}
