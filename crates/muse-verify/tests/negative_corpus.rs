//! Negative corpus: one seeded-faulty query, graph, or deployment per
//! diagnostic code. Every case must be flagged with its expected `MGxxxx`
//! code — this pins both the checks and the code registry.

use muse_core::catalog::Catalog;
use muse_core::graph::{MuseGraph, PlanContext, Vertex};
use muse_core::prelude::*;
use muse_core::query::parser::ParserOptions;
use muse_core::types::{PrimId, PrimSet};
use muse_verify::{
    lint_query_text, lint_workload, verify_deployment, verify_graph, verify_migration, verify_plan,
    Code, MigrationPlan, Report, VerifyConfig,
};

// ---------------------------------------------------------------- helpers

fn lint_text(input: &str) -> Report {
    let mut report = Report::new();
    let mut cat = Catalog::new();
    let opts = ParserOptions {
        auto_register_types: true,
        auto_register_attrs: true,
        ..Default::default()
    };
    lint_query_text(input, QueryId(0), &mut cat, &opts, &mut report);
    report
}

/// The paper's running example: `SEQ(AND(C, L), F)` over three nodes.
fn example() -> (Vec<Query>, Network, ProjectionTable, MuseGraph) {
    let mut catalog = Catalog::new();
    let c = catalog.add_event_type("C").unwrap();
    let l = catalog.add_event_type("L").unwrap();
    let f = catalog.add_event_type("F").unwrap();
    let network = NetworkBuilder::new(3, 3)
        .node(NodeId(0), [c, f])
        .node(NodeId(1), [c, l])
        .node(NodeId(2), [l])
        .rate(c, 100.0)
        .rate(l, 100.0)
        .rate(f, 1.0)
        .build();
    let pattern = Pattern::seq([
        Pattern::and([Pattern::leaf(c), Pattern::leaf(l)]),
        Pattern::leaf(f),
    ]);
    let query = Query::build(QueryId(0), &pattern, vec![], 1_000).unwrap();
    let plan = amuse(&query, &network, &AMuseConfig::default()).unwrap();
    (vec![query], network, plan.table, plan.graph)
}

fn verify(
    queries: &[Query],
    network: &Network,
    table: &ProjectionTable,
    graph: &MuseGraph,
) -> Report {
    let ctx = PlanContext::new(queries, network, table);
    verify_plan(graph, &ctx, &VerifyConfig::default())
}

/// Copies `graph` without vertex `victim` (and its edges).
fn without_vertex(graph: &MuseGraph, victim: Vertex) -> MuseGraph {
    let mut out = MuseGraph::new();
    for v in graph.vertices().filter(|v| *v != victim) {
        out.add_vertex(v);
    }
    for (a, b) in graph.edges().filter(|(a, b)| *a != victim && *b != victim) {
        out.add_edge(a, b);
    }
    out
}

// ------------------------------------------------------- query-level cases

#[test]
fn mg0100_parse_failure() {
    let r = lint_text("PATTERN SEQ(Fail f, Kill k) #");
    assert!(r.has_code(Code::ParseFailure), "{r}");
}

#[test]
fn mg0101_unsatisfiable_predicate() {
    let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x < f.x WITHIN 10");
    assert!(r.has_code(Code::UnsatisfiablePredicate), "{r}");
}

#[test]
fn mg0102_contradictory_predicates() {
    let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x = 1 AND f.x = 2 WITHIN 10");
    assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
}

/// Regression (interval-domain rewrite): an empty *open*-interval
/// intersection — `x > 5 AND x < 5` admits no value although the bounds
/// are equal — must be flagged, and its satisfiable closed counterpart
/// must not.
#[test]
fn mg0102_open_interval_intersection() {
    let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x > 5 AND f.x < 5 WITHIN 10");
    assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
    let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x >= 5 AND f.x <= 5 WITHIN 10");
    assert!(!r.has_code(Code::ContradictoryPredicates), "{r}");
}

/// Regression (the sampling-era soundness hole): `x >= 5 AND x <= 5 AND
/// x != 5` is unsatisfiable although every pair of the three predicates is
/// satisfiable — only the accumulated interval-domain conjunction sees it.
#[test]
fn mg0102_jointly_unsatisfiable_triple() {
    let r =
        lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x >= 5 AND f.x <= 5 AND f.x != 5 WITHIN 10");
    assert!(r.has_code(Code::ContradictoryPredicates), "{r}");
    // Loosening the upper bound makes the triple satisfiable again.
    let r =
        lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x >= 5 AND f.x <= 6 AND f.x != 5 WITHIN 10");
    assert!(!r.has_code(Code::ContradictoryPredicates), "{r}");
}

#[test]
fn mg0103_zero_window() {
    let r = lint_text("PATTERN SEQ(Fail f, Kill k) WITHIN 0");
    assert!(r.has_code(Code::ZeroWindow), "{r}");
}

#[test]
fn mg0104_unbounded_window() {
    let r = lint_text("PATTERN SEQ(Fail f, Kill k)");
    assert!(r.has_code(Code::UnboundedWindow), "{r}");
}

#[test]
fn mg0105_duplicate_event_type() {
    let r = lint_text("PATTERN SEQ(Fail a, Fail b) WITHIN 10");
    assert!(r.has_code(Code::DuplicateEventType), "{r}");
}

#[test]
fn mg0106_nseq_scope_violation() {
    let r = lint_text("PATTERN SEQ(NSEQ(A a, B b, C c), D d) WHERE b.x = d.x WITHIN 10");
    assert!(r.has_code(Code::NseqScopeViolation), "{r}");
}

#[test]
fn mg0107_trivial_predicate() {
    let r = lint_text("PATTERN SEQ(Fail f, Kill k) WHERE f.x = f.x WITHIN 10");
    assert!(r.has_code(Code::TrivialPredicate), "{r}");
}

// ------------------------------------------------------- graph-level cases

#[test]
fn mg0201_graph_cycle() {
    let (queries, network, table, graph) = example();
    let mut cyclic = graph.clone();
    let (a, b) = graph.edges().next().expect("graph has edges");
    cyclic.add_edge(b, a);
    let r = verify(&queries, &network, &table, &cyclic);
    assert!(r.has_code(Code::GraphCycle), "{r}");
}

#[test]
fn mg0202_missing_primitive_vertex() {
    let (queries, network, table, graph) = example();
    let victim = graph.sources().into_iter().next().expect("has sources");
    let broken = without_vertex(&graph, victim);
    let r = verify(&queries, &network, &table, &broken);
    assert!(r.has_code(Code::MissingPrimitiveVertex), "{r}");
}

#[test]
fn mg0203_composite_source() {
    let (queries, network, table, graph) = example();
    // Strip every incoming edge of a sink, leaving a composite with no
    // predecessors.
    let sink = *graph
        .sinks()
        .iter()
        .find(|v| !table.get(v.proj).is_primitive())
        .expect("has composite sink");
    let mut broken = MuseGraph::new();
    for v in graph.vertices() {
        broken.add_vertex(v);
    }
    for (a, b) in graph.edges().filter(|(_, b)| *b != sink) {
        broken.add_edge(a, b);
    }
    let r = verify(&queries, &network, &table, &broken);
    assert!(r.has_code(Code::CompositeSource), "{r}");
}

#[test]
fn mg0204_primitive_at_non_producer() {
    let (queries, network, table, graph) = example();
    // Node 2 generates only L; plant the C primitive there.
    let c_proj = table
        .id_of(QueryId(0), PrimSet::single(PrimId(0)))
        .expect("primitive projection registered");
    let mut bad = graph.clone();
    bad.add_vertex(Vertex::new(c_proj, NodeId(2)));
    let r = verify(&queries, &network, &table, &bad);
    assert!(r.has_code(Code::PrimitiveAtNonProducer), "{r}");
}

#[test]
fn mg0205_cross_query_edge() {
    // Two single-primitive-overlap queries, then an edge across them.
    let mut catalog = Catalog::new();
    let a = catalog.add_event_type("A").unwrap();
    let b = catalog.add_event_type("B").unwrap();
    let c = catalog.add_event_type("C").unwrap();
    let network = NetworkBuilder::new(2, 3)
        .node(NodeId(0), [a, b])
        .node(NodeId(1), [c])
        .rate(a, 10.0)
        .rate(b, 10.0)
        .rate(c, 10.0)
        .build();
    let q0 = Query::build(
        QueryId(0),
        &Pattern::seq([Pattern::leaf(a), Pattern::leaf(b)]),
        vec![],
        100,
    )
    .unwrap();
    let q1 = Query::build(
        QueryId(1),
        &Pattern::seq([Pattern::leaf(b), Pattern::leaf(c)]),
        vec![],
        100,
    )
    .unwrap();
    let workload = Workload::new(catalog, vec![q0, q1]).unwrap();
    let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
    let mut bad = plan.merged.clone();
    // Edge from a q0 source into a q1 composite vertex.
    let ctx_table = &plan.table;
    let from = bad
        .sources()
        .into_iter()
        .find(|v| ctx_table.get(v.proj).source == QueryId(0))
        .expect("q0 source");
    let to = bad
        .vertices()
        .find(|v| ctx_table.get(v.proj).source == QueryId(1) && !bad.predecessors(*v).is_empty())
        .expect("q1 composite");
    bad.add_edge(from, to);
    let ctx = PlanContext::new(workload.queries(), &network, &plan.table);
    let r = verify_plan(&bad, &ctx, &VerifyConfig::default());
    assert!(r.has_code(Code::CrossQueryEdge), "{r}");
}

#[test]
fn mg0206_improper_predecessor() {
    let (queries, network, table, graph) = example();
    // Feed a sink's full-query projection back into a smaller vertex: the
    // full prims are no proper subset of anything.
    let sink = *graph
        .sinks()
        .iter()
        .find(|v| !table.get(v.proj).is_primitive())
        .expect("has composite sink");
    let target = graph
        .vertices()
        .find(|v| !graph.predecessors(*v).is_empty() && *v != sink)
        .expect("has non-source vertex besides the sink");
    let mut bad = graph.clone();
    bad.add_edge(sink, target);
    let r = verify(&queries, &network, &table, &bad);
    assert!(r.has_code(Code::ImproperPredecessor), "{r}");
}

#[test]
fn mg0207_incomplete_combination() {
    let (queries, network, table, graph) = example();
    // Cut every edge delivering one predecessor projection to one composite
    // vertex, leaving its combination short of the target.
    let target = graph
        .vertices()
        .find(|v| !graph.predecessors(*v).is_empty())
        .expect("has composite vertex");
    let cut_proj = graph.predecessors(target)[0].proj;
    let mut bad = MuseGraph::new();
    for v in graph.vertices() {
        bad.add_vertex(v);
    }
    for (a, b) in graph
        .edges()
        .filter(|(a, b)| !(*b == target && a.proj == cut_proj))
    {
        bad.add_edge(a, b);
    }
    let r = verify(&queries, &network, &table, &bad);
    assert!(r.has_code(Code::IncompleteCombination), "{r}");
}

#[test]
fn mg0208_redundant_combination() {
    let (queries, network, mut table, _) = example();
    // {C,L}, {L,F}, {F} -> {C,L,F}: {F} is covered by {L,F} (Def. 15).
    let q = &queries[0];
    let p_cl = table.project_into(q, PrimSet::from_bits(0b011)).unwrap();
    let p_lf = table.project_into(q, PrimSet::from_bits(0b110)).unwrap();
    let p_f = table.project_into(q, PrimSet::single(PrimId(2))).unwrap();
    let p_full = table.project_into(q, q.prims()).unwrap();
    let mut g = MuseGraph::new();
    let (vcl, vlf, vf, vfull) = (
        Vertex::new(p_cl, NodeId(0)),
        Vertex::new(p_lf, NodeId(0)),
        Vertex::new(p_f, NodeId(0)),
        Vertex::new(p_full, NodeId(0)),
    );
    for v in [vcl, vlf, vf, vfull] {
        g.add_vertex(v);
    }
    g.add_edge(vcl, vfull);
    g.add_edge(vlf, vfull);
    g.add_edge(vf, vfull);
    let r = verify(&queries, &network, &table, &g);
    assert!(r.has_code(Code::RedundantCombination), "{r}");
}

#[test]
fn mg0209_negation_not_closed() {
    // NSEQ(A, B, C): keeping {A, B} splits the context.
    let mut catalog = Catalog::new();
    let a = catalog.add_event_type("A").unwrap();
    let b = catalog.add_event_type("B").unwrap();
    let c = catalog.add_event_type("C").unwrap();
    let network = NetworkBuilder::new(1, 3)
        .node(NodeId(0), [a, b, c])
        .rate(a, 1.0)
        .rate(b, 1.0)
        .rate(c, 1.0)
        .build();
    let pattern = Pattern::nseq(Pattern::leaf(a), Pattern::leaf(b), Pattern::leaf(c));
    let query = Query::build(QueryId(0), &pattern, vec![], 100).unwrap();
    let mut table = ProjectionTable::new();
    let legit = table.project_into(&query, query.prims()).unwrap();
    // `project` refuses non-closed prim sets, so forge one by hand.
    let mut forged = table.get(legit).clone();
    forged.prims = PrimSet::from_bits(0b011); // {A, B}: B is negated
    let forged_id = table.insert(forged);
    let mut g = MuseGraph::new();
    g.add_vertex(Vertex::new(forged_id, NodeId(0)));
    let queries = [query];
    let ctx = PlanContext::new(&queries, &network, &table);
    let mut r = Report::new();
    verify_graph(&g, &ctx, &VerifyConfig::for_deploy(), &mut r);
    assert!(r.has_code(Code::NegationNotClosed), "{r}");
}

#[test]
fn mg0210_incomplete_graph_and_mg0305_missing_sink() {
    let (queries, network, table, graph) = example();
    // Remove every sink: structure stays well-formed but no vertex hosts
    // the full query, so bindings are covered by no sink.
    let mut broken = graph.clone();
    for sink in graph.sinks() {
        broken = without_vertex(&broken, sink);
    }
    let r = verify(&queries, &network, &table, &broken);
    assert!(r.has_code(Code::IncompleteGraph), "{r}");
    assert!(r.has_code(Code::MissingSink), "{r}");
}

#[test]
fn mg0211_completeness_skipped_on_tiny_limit() {
    let (queries, network, table, graph) = example();
    let ctx = PlanContext::new(&queries, &network, &table);
    let cfg = VerifyConfig {
        binding_limit: 1,
        ..VerifyConfig::default()
    };
    let r = verify_plan(&graph, &ctx, &cfg);
    assert!(r.has_code(Code::CompletenessSkipped), "{r}");
}

// -------------------------------------------------- deployment-level cases

#[test]
fn mg0301_unreachable_input() {
    let (queries, network, table, graph) = example();
    // A C primitive at non-producing node 2: the deployment pass sees its
    // input dry regardless of the structural MG0204.
    let c_proj = table
        .id_of(QueryId(0), PrimSet::single(PrimId(0)))
        .expect("primitive projection registered");
    let mut bad = graph.clone();
    bad.add_vertex(Vertex::new(c_proj, NodeId(2)));
    let ctx = PlanContext::new(&queries, &network, &table);
    let mut r = Report::new();
    verify_deployment(&bad, &ctx, &VerifyConfig::for_deploy(), &mut r);
    assert!(r.has_code(Code::UnreachableInput), "{r}");
}

#[test]
fn mg0302_inconsistent_cost_model() {
    let (queries, network, table, graph) = example();
    // Doubling every projection's rate detaches the deployed weights from
    // r̂ = σ · rates(inputs).
    let rates: Vec<f64> = (0..table.len() as u32)
        .map(|i| {
            let proj = table.get(muse_core::projection::ProjId(i));
            let query = queries.iter().find(|q| q.id() == proj.source).unwrap();
            2.0 * muse_core::cost::projection_output_rate(proj, query, &network)
        })
        .collect();
    let ctx = PlanContext::new(&queries, &network, &table).with_rates(&rates);
    let mut r = Report::new();
    verify_deployment(&graph, &ctx, &VerifyConfig::for_deploy(), &mut r);
    assert!(r.has_code(Code::InconsistentCostModel), "{r}");
}

#[test]
fn mg0303_non_finite_rate() {
    let (queries, network, table, graph) = example();
    let rates = vec![f64::NAN; table.len()];
    let ctx = PlanContext::new(&queries, &network, &table).with_rates(&rates);
    let mut r = Report::new();
    verify_deployment(&graph, &ctx, &VerifyConfig::for_deploy(), &mut r);
    assert!(r.has_code(Code::NonFiniteRate), "{r}");
}

#[test]
fn mg0304_orphan_vertex() {
    let (queries, network, mut table, graph) = example();
    // A well-formed {C, L} placement whose matches nothing consumes.
    let q = &queries[0];
    let p_cl = table.project_into(q, PrimSet::from_bits(0b011)).unwrap();
    let orphan = Vertex::new(p_cl, NodeId(1));
    let mut bad = graph.clone();
    bad.add_vertex(orphan);
    for src in graph.sources() {
        let proj = table.get(src.proj);
        if proj.prims.is_proper_subset(PrimSet::from_bits(0b011)) {
            bad.add_edge(src, orphan);
        }
    }
    let r = verify(&queries, &network, &table, &bad);
    assert!(r.has_code(Code::OrphanVertex), "{r}");
}

#[test]
fn mg0108_duplicate_query() {
    let mut catalog = Catalog::new();
    let a = catalog.add_event_type("A").unwrap();
    let b = catalog.add_event_type("B").unwrap();
    let pattern = Pattern::seq([Pattern::leaf(a), Pattern::leaf(b)]);
    let q0 = Query::build(QueryId(0), &pattern, vec![], 1_000).unwrap();
    let q1 = Query::build(QueryId(1), &pattern, vec![], 1_000).unwrap();
    let mut r = Report::new();
    lint_workload(&[q0, q1], &mut r);
    assert!(r.has_code(Code::DuplicateQuery), "{r}");
}

#[test]
fn mg0109_subsumed_query() {
    use muse_core::query::{CmpOp, Predicate};
    use muse_core::types::AttrId;
    let mut catalog = Catalog::new();
    let a = catalog.add_event_type("A").unwrap();
    let b = catalog.add_event_type("B").unwrap();
    let pattern = Pattern::seq([Pattern::leaf(a), Pattern::leaf(b)]);
    let pred = Predicate::binary(
        (PrimId(0), AttrId(0)),
        CmpOp::Eq,
        (PrimId(1), AttrId(0)),
        0.1,
    );
    let q0 = Query::build(QueryId(0), &pattern, vec![], 1_000).unwrap();
    let q1 = Query::build(QueryId(1), &pattern, vec![pred], 1_000).unwrap();
    let mut r = Report::new();
    lint_workload(&[q0, q1], &mut r);
    assert!(r.has_code(Code::SubsumedQuery), "{r}");
}

// -------------------------------------------------- migration-level cases

/// A parameterized workload for plan-diff cases: `SEQ(AND(C, L), F)` with a
/// window and optional predicate knob, plus an optional second query.
fn migration_plan(
    window: u64,
    pred_bound: Option<i64>,
    extra_query: bool,
) -> (Vec<Query>, Network, ProjectionTable, MuseGraph) {
    use muse_core::query::{CmpOp, Predicate};
    use muse_core::types::AttrId;
    let mut catalog = Catalog::new();
    let c = catalog.add_event_type("C").unwrap();
    let l = catalog.add_event_type("L").unwrap();
    let f = catalog.add_event_type("F").unwrap();
    let network = NetworkBuilder::new(3, 3)
        .node(NodeId(0), [c, f])
        .node(NodeId(1), [c, l])
        .node(NodeId(2), [l])
        .rate(c, 100.0)
        .rate(l, 100.0)
        .rate(f, 1.0)
        .build();
    let pattern = Pattern::seq([
        Pattern::and([Pattern::leaf(c), Pattern::leaf(l)]),
        Pattern::leaf(f),
    ]);
    let mut preds = Vec::new();
    if let Some(bound) = pred_bound {
        preds.push(Predicate::unary(
            PrimId(2),
            AttrId(0),
            CmpOp::Gt,
            Value::Int(bound),
            0.5,
        ));
    }
    let mut queries = vec![Query::build(QueryId(0), &pattern, preds, window).unwrap()];
    if extra_query {
        let p2 = Pattern::seq([Pattern::leaf(c), Pattern::leaf(f)]);
        queries.push(Query::build(QueryId(1), &p2, vec![], 500).unwrap());
    }
    let workload = Workload::new(catalog, queries.clone()).unwrap();
    let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
    (queries, network, plan.table, plan.merged)
}

fn migrate(
    a: &(Vec<Query>, Network, ProjectionTable, MuseGraph),
    b: &(Vec<Query>, Network, ProjectionTable, MuseGraph),
) -> (Report, MigrationPlan) {
    let actx = PlanContext::new(&a.0, &a.1, &a.2);
    let bctx = PlanContext::new(&b.0, &b.1, &b.2);
    verify_migration(&a.3, &actx, &b.3, &bctx, None)
}

#[test]
fn mg0250_portable_migration() {
    let a = migration_plan(1_000, Some(5), false);
    let b = migration_plan(1_000, Some(5), false);
    let (r, plan) = migrate(&a, &b);
    assert!(r.has_code(Code::MigrationPortable), "{r}");
    assert!(plan.safe && !plan.needs_replay, "{r}");
}

#[test]
fn mg0251_widened_window_replay() {
    let a = migration_plan(1_000, None, false);
    let b = migration_plan(2_000, None, false);
    let (r, plan) = migrate(&a, &b);
    assert!(r.has_code(Code::MigrationReplay), "{r}");
    assert!(plan.safe && plan.needs_replay, "{r}");
}

#[test]
fn mg0252_narrowed_window() {
    let a = migration_plan(1_000, None, false);
    let b = migration_plan(500, None, false);
    let (r, plan) = migrate(&a, &b);
    assert!(r.has_code(Code::MigrationWindowNarrowed), "{r}");
    assert!(!plan.safe);
}

#[test]
fn mg0253_changed_predicates() {
    let a = migration_plan(1_000, Some(5), false);
    let b = migration_plan(1_000, Some(7), false);
    let (r, plan) = migrate(&a, &b);
    assert!(r.has_code(Code::MigrationPredicatesChanged), "{r}");
    assert!(!plan.safe);
}

#[test]
fn mg0254_changed_sink_attribution() {
    // A: two byte-identical queries share one physical sink task attributed
    // to {Q0, Q1}. B: Q1's window changes, so the shared task only serves
    // Q0 — the carried per-query dedup state cannot be re-attributed.
    let mut catalog = Catalog::new();
    let c = catalog.add_event_type("C").unwrap();
    let f = catalog.add_event_type("F").unwrap();
    let network = NetworkBuilder::new(2, 2)
        .node(NodeId(0), [c, f])
        .node(NodeId(1), [c])
        .rate(c, 10.0)
        .rate(f, 1.0)
        .build();
    let pattern = Pattern::seq([Pattern::leaf(c), Pattern::leaf(f)]);
    let build = |w1: u64| {
        let q0 = Query::build(QueryId(0), &pattern, vec![], 500).unwrap();
        let q1 = Query::build(QueryId(1), &pattern, vec![], w1).unwrap();
        let workload = Workload::new(catalog.clone(), vec![q0.clone(), q1.clone()]).unwrap();
        let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
        (vec![q0, q1], plan.table, plan.merged)
    };
    let (aq, at, ag) = build(500);
    let (bq, bt, bg) = build(700);
    let actx = PlanContext::new(&aq, &network, &at);
    let bctx = PlanContext::new(&bq, &network, &bt);
    let (r, plan) = verify_migration(&ag, &actx, &bg, &bctx, None);
    assert!(r.has_code(Code::MigrationSinksChanged), "{r}");
    assert!(!plan.safe);
}

#[test]
fn mg0255_vertex_of_surviving_query_lost() {
    let a = migration_plan(1_000, None, false);
    let mut b = migration_plan(1_000, None, false);
    let sink = b.3.sinks().into_iter().next().expect("has sink");
    b.3 = without_vertex(&b.3, sink);
    let (r, plan) = migrate(&a, &b);
    assert!(r.has_code(Code::MigrationVertexLost), "{r}");
    assert!(!plan.safe);
}

#[test]
fn mg0256_added_vertex_starts_cold() {
    let a = migration_plan(1_000, None, false);
    let mut b = migration_plan(1_000, None, false);
    // An extra well-formed {C, L} placement that A does not have.
    let q = &b.0[0];
    let p_cl = b.2.project_into(q, PrimSet::from_bits(0b011)).unwrap();
    b.3.add_vertex(Vertex::new(p_cl, NodeId(1)));
    let (r, plan) = migrate(&a, &b);
    assert!(r.has_code(Code::MigrationVertexFresh), "{r}");
    // A cold vertex is a warning, not a refusal.
    assert!(plan.safe, "{r}");
}

#[test]
fn mg0257_query_dropped() {
    let a = migration_plan(1_000, None, true);
    let b = migration_plan(1_000, None, false);
    let (r, plan) = migrate(&a, &b);
    assert!(r.has_code(Code::MigrationQueryDropped), "{r}");
    assert!(plan.safe, "{r}");
    assert_eq!(plan.dropped_queries, vec![QueryId(1)]);
}

#[test]
fn mg0258_query_added() {
    let a = migration_plan(1_000, None, false);
    let b = migration_plan(1_000, None, true);
    let (r, plan) = migrate(&a, &b);
    assert!(r.has_code(Code::MigrationQueryAdded), "{r}");
    assert!(plan.safe, "{r}");
    assert_eq!(plan.added_queries, vec![QueryId(1)]);
}

/// Every code in the registry is exercised by this corpus (or the
/// query-lint suite); keeps the corpus in lockstep with new codes.
#[test]
fn corpus_covers_all_error_codes() {
    let covered = [
        Code::ParseFailure,
        Code::UnsatisfiablePredicate,
        Code::ContradictoryPredicates,
        Code::ZeroWindow,
        Code::UnboundedWindow,
        Code::DuplicateEventType,
        Code::NseqScopeViolation,
        Code::TrivialPredicate,
        Code::DuplicateQuery,
        Code::SubsumedQuery,
        Code::GraphCycle,
        Code::MissingPrimitiveVertex,
        Code::CompositeSource,
        Code::PrimitiveAtNonProducer,
        Code::CrossQueryEdge,
        Code::ImproperPredecessor,
        Code::IncompleteCombination,
        Code::RedundantCombination,
        Code::NegationNotClosed,
        Code::IncompleteGraph,
        Code::CompletenessSkipped,
        Code::MigrationPortable,
        Code::MigrationReplay,
        Code::MigrationWindowNarrowed,
        Code::MigrationPredicatesChanged,
        Code::MigrationSinksChanged,
        Code::MigrationVertexLost,
        Code::MigrationVertexFresh,
        Code::MigrationQueryDropped,
        Code::MigrationQueryAdded,
        Code::UnreachableInput,
        Code::InconsistentCostModel,
        Code::NonFiniteRate,
        Code::OrphanVertex,
        Code::MissingSink,
    ];
    for &code in Code::ALL {
        assert!(
            covered.contains(&code),
            "diagnostic {code} has no negative-corpus case"
        );
    }
}
