//! Mutation harness for the plan-diff migration-safety pass: starting from
//! a clean two-query plan, mutate one dimension of one query — narrow its
//! window, flip a predicate bound, or drop its sink vertex — and require
//! that the verifier (a) refuses to certify the pair, (b) flags the
//! mutation with the right `MG025x` code, and (c) leaves the untouched
//! control query's tasks fully portable. The unmutated and widened-window
//! directions guard against false rejections: they must certify.
//!
//! Together these are the soundness gate of the migration verifier: zero
//! false certifications across the randomized mutation space.

use muse_core::catalog::Catalog;
use muse_core::graph::{MuseGraph, PlanContext};
use muse_core::prelude::*;
use muse_core::projection::ProjectionTable;
use muse_core::query::{CmpOp, Predicate};
use muse_core::types::AttrId;
use muse_verify::{verify_migration, CarryMode, Code, MigrationPlan, Report};
use proptest::prelude::*;

/// Window of the fixed control query (`Q0`); the mutable query's window is
/// drawn to never collide with it, so control tasks are identifiable in
/// the plan by their `TaskKey` window.
const CONTROL_WINDOW: u64 = 1_000;

/// Builds the two-query plan: a fixed control query
/// `Q0 = SEQ(AND(C, L), F)` and the mutable `Q1 = SEQ(C, F)` with window
/// `w` and predicate `p0.a0 > bound`.
fn plan(w: u64, bound: i64) -> (Vec<Query>, Network, ProjectionTable, MuseGraph) {
    let mut catalog = Catalog::new();
    let c = catalog.add_event_type("C").unwrap();
    let l = catalog.add_event_type("L").unwrap();
    let f = catalog.add_event_type("F").unwrap();
    let network = NetworkBuilder::new(3, 3)
        .node(NodeId(0), [c, f])
        .node(NodeId(1), [c, l])
        .node(NodeId(2), [l])
        .rate(c, 100.0)
        .rate(l, 100.0)
        .rate(f, 1.0)
        .build();
    let p0 = Pattern::seq([
        Pattern::and([Pattern::leaf(c), Pattern::leaf(l)]),
        Pattern::leaf(f),
    ]);
    let q0 = Query::build(QueryId(0), &p0, vec![], CONTROL_WINDOW).unwrap();
    let p1 = Pattern::seq([Pattern::leaf(c), Pattern::leaf(f)]);
    let preds = vec![Predicate::unary(
        PrimId(0),
        AttrId(0),
        CmpOp::Gt,
        Value::Int(bound),
        0.5,
    )];
    let q1 = Query::build(QueryId(1), &p1, preds, w).unwrap();
    let workload = Workload::new(catalog, vec![q0.clone(), q1.clone()]).unwrap();
    let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
    (vec![q0, q1], network, plan.table, plan.merged)
}

fn migrate(
    a: &(Vec<Query>, Network, ProjectionTable, MuseGraph),
    b: &(Vec<Query>, Network, ProjectionTable, MuseGraph),
) -> (Report, MigrationPlan) {
    let actx = PlanContext::new(&a.0, &a.1, &a.2);
    let bctx = PlanContext::new(&b.0, &b.1, &b.2);
    verify_migration(&a.3, &actx, &b.3, &bctx, None)
}

/// Every task of the untouched control query carries over unchanged.
fn control_tasks_carry(plan: &MigrationPlan) -> bool {
    plan.actions
        .iter()
        .filter(|a| {
            a.to.map(|k| k.window) == Some(CONTROL_WINDOW)
                || a.from.map(|k| k.window) == Some(CONTROL_WINDOW)
        })
        .all(|a| a.mode == CarryMode::Carry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The identity migration certifies: every task portable, no replay.
    #[test]
    fn identity_certifies(w in 200u64..2_000, bound in -50i64..50) {
        if w == CONTROL_WINDOW {
            return Ok(());
        }
        let a = plan(w, bound);
        let b = plan(w, bound);
        let (r, m) = migrate(&a, &b);
        prop_assert!(m.safe && !m.needs_replay, "{r}");
        prop_assert!(!r.has_errors(), "{r}");
        prop_assert!(r.has_code(Code::MigrationPortable), "{r}");
        prop_assert!(m.actions.iter().all(|a| a.mode == CarryMode::Carry), "{r}");
        prop_assert_eq!(m.matched, m.actions.len());
    }

    /// Widening the window certifies with a replay obligation — a safe
    /// change must not be rejected.
    #[test]
    fn widened_window_certifies_with_replay(
        w in 200u64..2_000,
        extra in 1u64..1_000,
        bound in -50i64..50,
    ) {
        if w == CONTROL_WINDOW || w + extra == CONTROL_WINDOW {
            return Ok(());
        }
        let a = plan(w, bound);
        let b = plan(w + extra, bound);
        let (r, m) = migrate(&a, &b);
        prop_assert!(m.safe && m.needs_replay, "{r}");
        prop_assert!(!r.has_errors(), "{r}");
        prop_assert!(r.has_code(Code::MigrationReplay), "{r}");
        prop_assert!(control_tasks_carry(&m), "{r}");
    }

    /// Narrowing the window is never certified, is flagged with MG0252,
    /// and only the mutated query's tasks are implicated.
    #[test]
    fn narrowed_window_never_certifies(
        w in 200u64..2_000,
        narrower in 1u64..2_000,
        bound in -50i64..50,
    ) {
        if narrower >= w || w == CONTROL_WINDOW || narrower == CONTROL_WINDOW {
            return Ok(());
        }
        let a = plan(w, bound);
        let b = plan(narrower, bound);
        let (r, m) = migrate(&a, &b);
        prop_assert!(!m.safe, "false certification:\n{r}");
        prop_assert!(r.has_code(Code::MigrationWindowNarrowed), "{r}");
        prop_assert!(!r.has_code(Code::MigrationPredicatesChanged), "{r}");
        prop_assert!(control_tasks_carry(&m), "control query implicated:\n{r}");
    }

    /// Flipping the predicate bound is never certified, is flagged with
    /// MG0253, and only the mutated query's tasks are implicated.
    #[test]
    fn flipped_predicate_never_certifies(
        w in 200u64..2_000,
        bound in -50i64..50,
        delta_idx in 0usize..4,
    ) {
        if w == CONTROL_WINDOW {
            return Ok(());
        }
        let delta = [-7i64, -1, 1, 13][delta_idx];
        let a = plan(w, bound);
        let b = plan(w, bound + delta);
        let (r, m) = migrate(&a, &b);
        prop_assert!(!m.safe, "false certification:\n{r}");
        prop_assert!(r.has_code(Code::MigrationPredicatesChanged), "{r}");
        prop_assert!(!r.has_code(Code::MigrationWindowNarrowed), "{r}");
        prop_assert!(control_tasks_carry(&m), "control query implicated:\n{r}");
    }

    /// Dropping the mutable query's sink vertex while the query survives
    /// is never certified and is flagged with MG0255.
    #[test]
    fn dropped_sink_never_certifies(w in 200u64..2_000, bound in -50i64..50) {
        if w == CONTROL_WINDOW {
            return Ok(());
        }
        let a = plan(w, bound);
        let mut b = plan(w, bound);
        let bctx = PlanContext::new(&b.0, &b.1, &b.2);
        let victim = b
            .3
            .sinks()
            .into_iter()
            .find(|v| bctx.proj(v.proj).source == QueryId(1))
            .expect("Q1 has a sink");
        let mut pruned = MuseGraph::new();
        for v in b.3.vertices().filter(|v| *v != victim) {
            pruned.add_vertex(v);
        }
        for (x, y) in b.3.edges().filter(|(x, y)| *x != victim && *y != victim) {
            pruned.add_edge(x, y);
        }
        b.3 = pruned;
        let (r, m) = migrate(&a, &b);
        prop_assert!(!m.safe, "false certification:\n{r}");
        prop_assert!(r.has_code(Code::MigrationVertexLost), "{r}");
    }
}
