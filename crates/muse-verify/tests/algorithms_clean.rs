//! Positive sweep: every graph produced by the construction algorithms —
//! exhaustive `optimal`, `aMuSE`, `aMuSE*`, the multi-query extension, and
//! the operator-placement baseline — verifies with **zero** diagnostics
//! over randomly generated networks and workloads.

use muse_core::algorithms::baselines::{optimal_operator_placement, placement_to_graph};
use muse_core::algorithms::optimal::{optimal_muse_graph, OptimalConfig};
use muse_core::graph::{MuseGraph, PlanContext};
use muse_core::prelude::*;
use muse_core::projection::ProjectionTable;
use muse_sim::network_gen::{generate_network, NetworkConfig};
use muse_sim::workload_gen::{generate_workload, WorkloadConfig};
use muse_verify::{verify_plan, VerifyConfig};
use proptest::prelude::*;

fn assert_clean(
    what: &str,
    seed: u64,
    queries: &[Query],
    network: &Network,
    table: &ProjectionTable,
    graph: &MuseGraph,
) {
    let ctx = PlanContext::new(queries, network, table);
    let cfg = VerifyConfig {
        binding_limit: 200_000,
        ..VerifyConfig::default()
    };
    let report = verify_plan(graph, &ctx, &cfg);
    assert!(
        report.is_clean(),
        "{what} graph (seed {seed}) is not clean:\n{report}"
    );
}

/// A small random scenario: a network of `nodes` nodes over `types` event
/// types and a workload of related queries.
fn scenario(seed: u64, nodes: usize, types: usize, queries: usize) -> (Network, Workload) {
    let network = generate_network(&NetworkConfig {
        nodes,
        types,
        event_node_ratio: 0.6,
        rate_skew: 1.5,
        max_rate: 10_000,
        seed,
    });
    let workload = generate_workload(&WorkloadConfig {
        queries,
        prims_per_query: 3,
        types,
        selectivity_min: 0.05,
        selectivity_max: 0.5,
        share_fraction: 0.5,
        window: 1_000,
        seed: seed ^ 0x9e37_79b9,
    });
    (network, workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// aMuSE and aMuSE* plans verify clean, query by query.
    #[test]
    fn amuse_graphs_are_clean(seed in any::<u64>()) {
        let (network, workload) = scenario(seed, 5, 6, 2);
        for config in [AMuseConfig::default(), AMuseConfig::star()] {
            for query in workload.queries() {
                let Ok(plan) = amuse(query, &network, &config) else {
                    continue; // type without producer under this network
                };
                let queries = std::slice::from_ref(query);
                assert_clean("amuse", seed, queries, &network, &plan.table, &plan.graph);
            }
        }
    }

    /// The multi-query construction's merged graph verifies clean.
    #[test]
    fn workload_plans_are_clean(seed in any::<u64>()) {
        let (network, workload) = scenario(seed, 5, 6, 3);
        if workload.check_against(&network).is_err() {
            return Ok(());
        }
        let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(workload.queries(), &network, &plan.table);
        let cfg = VerifyConfig { binding_limit: 200_000, ..VerifyConfig::default() };
        let report = verify_plan(&plan.merged, &ctx, &cfg);
        prop_assert!(report.is_clean(), "workload graph (seed {seed}):\n{report}");
    }

    /// The exhaustive optimal search stays within the same invariants.
    #[test]
    fn optimal_graphs_are_clean(seed in any::<u64>()) {
        let (network, workload) = scenario(seed, 4, 4, 1);
        let config = OptimalConfig::default();
        for query in workload.queries() {
            let Ok(plan) = optimal_muse_graph(query, &network, &config) else {
                continue;
            };
            let queries = std::slice::from_ref(query);
            assert_clean("optimal", seed, queries, &network, &plan.table, &plan.graph);
        }
    }

    /// Classical single-sink operator placements, rewritten as MuSE graphs,
    /// verify clean too — the baseline is a restriction, not an exception.
    #[test]
    fn placement_graphs_are_clean(seed in any::<u64>()) {
        let (network, workload) = scenario(seed, 5, 6, 2);
        for query in workload.queries() {
            if network.check_producible(query.types()).is_err() {
                continue;
            }
            let placement = optimal_operator_placement(query, &network);
            let mut table = ProjectionTable::new();
            let Ok(graph) = placement_to_graph(query, &placement, &network, &mut table) else {
                continue;
            };
            let queries = std::slice::from_ref(query);
            assert_clean("placement", seed, queries, &network, &table, &graph);
        }
    }
}
