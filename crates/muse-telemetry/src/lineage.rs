//! Causal provenance records: the exact witness set behind a sink match.
//!
//! A [`ProvenanceRecord`] is a *self-contained witness* for one sink
//! match: the primitive events that constitute it (lineage keys are the
//! events' global sequence numbers, which the runtime already propagates
//! structurally through partial matches, transport frames, and
//! checkpoints) plus, for NSEQ queries, the absence windows in which no
//! event of the negated type may occur. Replaying only the witness events
//! — and checking the absence windows against the full trace — must
//! reproduce exactly the recorded match; the runtime's test suites assert
//! this closure property.
//!
//! Records are collected in a bounded [`ProvenanceRing`] with the same
//! eviction/merge discipline as [`crate::trace::TraceRing`], and sampled
//! deterministically by match hash ([`sampled`]) so independent executors
//! (and shards of one run) sample identical match sets.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One constituent primitive event of a recorded match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessEvent {
    /// Primitive slot the event is bound to within the query.
    pub prim: u8,
    /// Global sequence number — the lineage key identifying the source
    /// event across tasks, nodes, and checkpoint/restore.
    pub seq: u64,
    /// Node the event originated at.
    pub origin: u16,
    /// Event type id.
    pub ty: u16,
    /// Event timestamp in virtual ticks.
    pub t: u64,
}

/// One absence constraint of an NSEQ match: no event of `ty` (passing the
/// query's linking predicates) occurred strictly inside `(lo, hi)` in
/// trace order. `lo`/`hi` are the timestamps of the bounding witness
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbsenceWindow {
    /// Negated event type id.
    pub ty: u16,
    /// Timestamp of the witness event opening the window.
    pub lo: u64,
    /// Timestamp of the witness event closing the window.
    pub hi: u64,
}

/// A sink match explained back to its contributing source events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Emission timestamp in the run's clock domain.
    pub t: u64,
    /// Sink node.
    pub node: usize,
    /// Sink task index.
    pub task: usize,
    /// Logical query the match was attributed to.
    pub query: u32,
    /// Order-independent hash of the witness sequence numbers — the
    /// record's identity (shared with the executors' transmission
    /// multiplexing, so sim and threaded runs sample identical sets).
    pub match_hash: u64,
    /// The constituent events, in primitive-slot order.
    pub witness: Vec<WitnessEvent>,
    /// NSEQ absence windows (empty for negation-free queries).
    pub absence: Vec<AbsenceWindow>,
}

impl ProvenanceRecord {
    /// The witness sequence numbers, in primitive-slot order (the match
    /// fingerprint the parity suites compare).
    pub fn witness_seqs(&self) -> Vec<u64> {
        self.witness.iter().map(|w| w.seq).collect()
    }
}

/// Whether a match with the given hash is in the deterministic sample.
/// `sample` is the sampling divisor: 0 disables tracing entirely, 1
/// records every sink match, `n` records 1-in-`n` on average.
#[inline]
pub fn sampled(sample: u64, match_hash: u64) -> bool {
    sample != 0 && match_hash.is_multiple_of(sample)
}

/// Bounded ring of provenance records (oldest evicted first; capacity 0
/// disables collection).
#[derive(Debug, Clone, Default)]
pub struct ProvenanceRing {
    records: VecDeque<ProvenanceRecord>,
    capacity: usize,
    dropped: u64,
}

impl ProvenanceRing {
    /// Creates a ring holding at most `capacity` records (0 disables
    /// collection entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn push(&mut self, rec: ProvenanceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &ProvenanceRecord> {
        self.records.iter()
    }

    /// The newest record for `match_hash`, if any is held.
    pub fn find(&self, match_hash: u64) -> Option<&ProvenanceRecord> {
        self.records
            .iter()
            .rev()
            .find(|r| r.match_hash == match_hash)
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or rejected) due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves all records from `other` into this ring, then re-sorts by
    /// emission time so shard-merged provenance reads in time order.
    pub fn absorb(&mut self, other: ProvenanceRing) {
        self.dropped += other.dropped;
        for rec in other.records {
            self.push(rec);
        }
        self.records.make_contiguous().sort_by_key(|r| r.t);
    }

    /// Serializes every held record as JSONL into `out`.
    pub fn write_jsonl<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        for rec in &self.records {
            let line = serde_json::to_string(rec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, hash: u64) -> ProvenanceRecord {
        ProvenanceRecord {
            t,
            node: 0,
            task: 3,
            query: 0,
            match_hash: hash,
            witness: vec![WitnessEvent {
                prim: 0,
                seq: t,
                origin: 0,
                ty: 1,
                t,
            }],
            absence: vec![],
        }
    }

    #[test]
    fn sampling_is_deterministic_and_gated() {
        assert!(!sampled(0, 42), "0 disables");
        assert!(sampled(1, 42), "1 records everything");
        assert!(sampled(64, 128));
        assert!(!sampled(64, 129));
    }

    #[test]
    fn ring_bounds_drops_and_finds() {
        let mut ring = ProvenanceRing::new(2);
        for t in 0..4 {
            ring.push(rec(t, 100 + t));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        assert!(ring.find(100).is_none(), "evicted");
        assert_eq!(ring.find(103).unwrap().t, 3);
        // Capacity 0 rejects everything.
        let mut off = ProvenanceRing::new(0);
        off.push(rec(0, 1));
        assert!(off.is_empty());
        assert_eq!(off.dropped(), 1);
    }

    #[test]
    fn absorb_sorts_by_time() {
        let mut a = ProvenanceRing::new(8);
        a.push(rec(10, 1));
        let mut b = ProvenanceRing::new(8);
        b.push(rec(4, 2));
        a.absorb(b);
        let ts: Vec<u64> = a.records().map(|r| r.t).collect();
        assert_eq!(ts, vec![4, 10]);
    }

    #[test]
    fn records_roundtrip_as_jsonl() {
        let mut ring = ProvenanceRing::new(8);
        let mut r = rec(7, 9);
        r.absence.push(AbsenceWindow {
            ty: 2,
            lo: 3,
            hi: 7,
        });
        ring.push(r.clone());
        let mut out = Vec::new();
        ring.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let back: ProvenanceRecord = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.witness_seqs(), vec![7]);
    }
}
