//! Allocation-free metrics registry: named counters, gauges, and
//! histograms.
//!
//! Registration (name → dense index) happens once at setup; the hot path
//! then updates plain `u64` slots through copyable handles — no hashing, no
//! allocation, no atomics. Concurrency follows the shard-and-merge model:
//! each worker thread owns a private `Registry` and the shards are
//! [`Registry::merge`]d on drain (counter/histogram merging is associative
//! and commutative; gauges merge per their declared [`GaugeKind`]).

use crate::hist::{HistSnapshot, LogHistogram};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// How a gauge combines across shards (and repeated snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GaugeKind {
    /// Peak semantics: merged value is the maximum (e.g. peak live
    /// matches).
    Max,
    /// Additive semantics: merged value is the sum (e.g. resident bytes
    /// per shard).
    Sum,
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(usize),
    Gauge(usize),
    Hist(usize),
}

/// A single-writer metrics registry (shard).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    index: HashMap<String, Slot>,
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<(u64, GaugeKind)>,
    hist_names: Vec<String>,
    hists: Vec<LogHistogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match self.index.get(name) {
            Some(Slot::Counter(i)) => CounterId(*i),
            Some(_) => panic!("telemetry name '{name}' already used by a non-counter"),
            None => {
                let i = self.counters.len();
                self.counters.push(0);
                self.counter_names.push(name.to_string());
                self.index.insert(name.to_string(), Slot::Counter(i));
                CounterId(i)
            }
        }
    }

    /// Registers (or looks up) a gauge with the given merge semantics.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind or
    /// with a different [`GaugeKind`].
    pub fn gauge(&mut self, name: &str, kind: GaugeKind) -> GaugeId {
        match self.index.get(name) {
            Some(Slot::Gauge(i)) => {
                assert_eq!(
                    self.gauges[*i].1, kind,
                    "telemetry gauge '{name}' re-registered with a different kind"
                );
                GaugeId(*i)
            }
            Some(_) => panic!("telemetry name '{name}' already used by a non-gauge"),
            None => {
                let i = self.gauges.len();
                self.gauges.push((0, kind));
                self.gauge_names.push(name.to_string());
                self.index.insert(name.to_string(), Slot::Gauge(i));
                GaugeId(i)
            }
        }
    }

    /// Registers (or looks up) a histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn hist(&mut self, name: &str) -> HistId {
        match self.index.get(name) {
            Some(Slot::Hist(i)) => HistId(*i),
            Some(_) => panic!("telemetry name '{name}' already used by a non-histogram"),
            None => {
                let i = self.hists.len();
                self.hists.push(LogHistogram::new());
                self.hist_names.push(name.to_string());
                self.index.insert(name.to_string(), Slot::Hist(i));
                HistId(i)
            }
        }
    }

    /// Increments a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Sets a gauge to a value.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0].0 = v;
    }

    /// Raises a gauge to at least `v` (peak tracking).
    #[inline]
    pub fn gauge_peak(&mut self, id: GaugeId, v: u64) {
        let g = &mut self.gauges[id.0].0;
        *g = (*g).max(v);
    }

    /// Records a value into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].record(v);
    }

    /// Merges an externally accumulated histogram into a registered one
    /// (for folding hot-path histograms — e.g. the transport's batch-size
    /// distribution — into the registry at end of run).
    pub fn observe_hist(&mut self, id: HistId, h: &LogHistogram) {
        self.hists[id.0].merge(h);
    }

    /// Reads a counter by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.index.get(name)? {
            Slot::Counter(i) => Some(self.counters[*i]),
            _ => None,
        }
    }

    /// Reads a gauge by name.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        match self.index.get(name)? {
            Slot::Gauge(i) => Some(self.gauges[*i].0),
            _ => None,
        }
    }

    /// Reads a histogram by name.
    pub fn hist_value(&self, name: &str) -> Option<&LogHistogram> {
        match self.index.get(name)? {
            Slot::Hist(i) => Some(&self.hists[*i]),
            _ => None,
        }
    }

    /// Merges another shard into this one by metric name: counters and
    /// histograms accumulate; gauges combine per their [`GaugeKind`].
    /// Metrics unknown to `self` are registered on the fly.
    ///
    /// # Panics
    ///
    /// Panics if a name is registered with conflicting kinds.
    pub fn merge(&mut self, other: &Registry) {
        for (name, &v) in other.counter_names.iter().zip(&other.counters) {
            let id = self.counter(name);
            self.inc(id, v);
        }
        for (name, &(v, kind)) in other.gauge_names.iter().zip(&other.gauges) {
            let id = self.gauge(name, kind);
            match kind {
                GaugeKind::Max => self.gauge_peak(id, v),
                GaugeKind::Sum => self.gauges[id.0].0 += v,
            }
        }
        for (name, h) in other.hist_names.iter().zip(&other.hists) {
            let id = self.hist(name);
            self.hists[id.0].merge(h);
        }
    }

    /// A serializable snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counter_names
                .iter()
                .cloned()
                .zip(self.counters.iter().copied())
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .cloned()
                .zip(self.gauges.iter().map(|&(v, _)| v))
                .collect(),
            hists: self
                .hist_names
                .iter()
                .cloned()
                .zip(self.hists.iter().map(|h| HistSnapshot::from(h.clone())))
                .collect(),
        }
    }
}

/// Point-in-time registry contents (the `telemetry.json` payload).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let mut r = Registry::new();
        let c = r.counter("events");
        let g = r.gauge("peak", GaugeKind::Max);
        let h = r.hist("lat");
        r.inc(c, 3);
        r.inc(c, 2);
        r.gauge_peak(g, 7);
        r.gauge_peak(g, 4);
        r.observe(h, 10);
        assert_eq!(r.counter_value("events"), Some(5));
        assert_eq!(r.gauge_value("peak"), Some(7));
        assert_eq!(r.hist_value("lat").unwrap().count(), 1);
        // Re-registration returns the same handle.
        assert_eq!(r.counter("events"), c);
    }

    #[test]
    fn merge_combines_by_name_and_kind() {
        let mut a = Registry::new();
        let ca = a.counter("n");
        let ga = a.gauge("peak", GaugeKind::Max);
        let sa = a.gauge("bytes", GaugeKind::Sum);
        a.inc(ca, 10);
        a.gauge_set(ga, 5);
        a.gauge_set(sa, 100);

        let mut b = Registry::new();
        // Different registration order must not matter: merge is by name.
        let gb = b.gauge("peak", GaugeKind::Max);
        let cb = b.counter("n");
        let sb = b.gauge("bytes", GaugeKind::Sum);
        let hb = b.hist("lat");
        b.inc(cb, 7);
        b.gauge_set(gb, 9);
        b.gauge_set(sb, 50);
        b.observe(hb, 3);

        a.merge(&b);
        assert_eq!(a.counter_value("n"), Some(17));
        assert_eq!(a.gauge_value("peak"), Some(9));
        assert_eq!(a.gauge_value("bytes"), Some(150));
        assert_eq!(a.hist_value("lat").unwrap().count(), 1);
    }

    #[test]
    fn merge_is_associative() {
        let shard = |seed: u64| {
            let mut r = Registry::new();
            let c = r.counter("n");
            let g = r.gauge("peak", GaugeKind::Max);
            let h = r.hist("lat");
            r.inc(c, seed);
            r.gauge_set(g, seed * 3 % 17);
            r.observe(h, seed * 31);
            r
        };
        let (a, b, c) = (shard(1), shard(2), shard(3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.snapshot(), right.snapshot());
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_conflict_panics() {
        let mut r = Registry::new();
        r.gauge("x", GaugeKind::Max);
        r.counter("x");
    }

    #[test]
    fn snapshot_serializes() {
        let mut r = Registry::new();
        let c = r.counter("events");
        r.inc(c, 2);
        let h = r.hist("lat");
        r.observe(h, 99);
        let snap = r.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counters["events"], 2);
        assert_eq!(back.hists["lat"].count, 1);
    }
}
