//! # muse-telemetry
//!
//! Observability substrate for the MuSE runtime, shared by the
//! discrete-event simulator and the thread-per-node executor:
//!
//! * [`registry`] — allocation-free named counters, gauges, and
//!   log-bucketed streaming histograms with shard-and-merge semantics.
//! * [`hist`] — the fixed-memory [`LogHistogram`] itself (HDR-style
//!   bucketing, bounded relative error, mergeable across shards).
//! * [`series`] — bounded per-task time series (queue depth, watermark
//!   lag, live partial matches, per-interval join activity).
//! * [`trace`] — a bounded ring of structured lineage records with JSONL
//!   export.
//! * [`lineage`] — sampled causal provenance: self-contained witness
//!   records explaining a sink match back to its source events.
//! * [`rate`] — windowed per-task output-rate estimators feeding the
//!   cost-model drift monitor.
//!
//! Executors accept an optional [`TelemetrySpec`] and, when present,
//! attach a [`RunTelemetry`] to their reports; the bench harness writes
//! those out as `telemetry.json` + `series.jsonl` (+ `trace.jsonl`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod hist;
pub mod lineage;
pub mod rate;
pub mod registry;
pub mod series;
pub mod trace;

pub use hist::{HistSnapshot, LogHistogram};
pub use lineage::{sampled, AbsenceWindow, ProvenanceRecord, ProvenanceRing, WitnessEvent};
pub use rate::{RateBank, RateEstimator};
pub use registry::{CounterId, GaugeId, GaugeKind, HistId, Registry, Snapshot};
pub use series::{ClockDomain, SeriesBuffer, SeriesRecord};
pub use trace::{TraceRecord, TraceRing};

use serde::{Deserialize, Serialize};

/// Configuration for telemetry collection during a run. Deserializes
/// leniently: omitted fields take their [`Default`] values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "TelemetrySpecRepr")]
pub struct TelemetrySpec {
    /// Series sampling cadence in virtual ticks (simulator executor).
    pub series_cadence_ticks: u64,
    /// Series sampling cadence in wall-clock nanoseconds (threaded
    /// executor).
    pub series_cadence_ns: u64,
    /// Maximum buffered series records per run (oldest dropped first).
    pub series_capacity: usize,
    /// Maximum buffered trace records per run (0 disables tracing).
    pub trace_capacity: usize,
    /// Provenance sampling divisor: 0 disables causal tracing, 1 records
    /// every sink match, `n` records the deterministic 1-in-`n` sample
    /// selected by match hash (see [`lineage::sampled`]).
    pub provenance_sample: u64,
    /// Maximum buffered provenance records per run.
    pub provenance_capacity: usize,
}

/// Wire-side shape of [`TelemetrySpec`] with every field optional.
#[derive(Deserialize)]
struct TelemetrySpecRepr {
    #[serde(default)]
    series_cadence_ticks: Option<u64>,
    #[serde(default)]
    series_cadence_ns: Option<u64>,
    #[serde(default)]
    series_capacity: Option<usize>,
    #[serde(default)]
    trace_capacity: Option<usize>,
    #[serde(default)]
    provenance_sample: Option<u64>,
    #[serde(default)]
    provenance_capacity: Option<usize>,
}

impl From<TelemetrySpecRepr> for TelemetrySpec {
    fn from(r: TelemetrySpecRepr) -> Self {
        Self {
            series_cadence_ticks: r.series_cadence_ticks.unwrap_or_else(default_cadence_ticks),
            series_cadence_ns: r.series_cadence_ns.unwrap_or_else(default_cadence_ns),
            series_capacity: r.series_capacity.unwrap_or_else(default_series_capacity),
            trace_capacity: r.trace_capacity.unwrap_or_else(default_trace_capacity),
            provenance_sample: r
                .provenance_sample
                .unwrap_or_else(default_provenance_sample),
            provenance_capacity: r
                .provenance_capacity
                .unwrap_or_else(default_provenance_capacity),
        }
    }
}

fn default_cadence_ticks() -> u64 {
    1000
}

fn default_cadence_ns() -> u64 {
    1_000_000
}

fn default_series_capacity() -> usize {
    65_536
}

fn default_trace_capacity() -> usize {
    4096
}

fn default_provenance_sample() -> u64 {
    0
}

fn default_provenance_capacity() -> usize {
    4096
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        Self {
            series_cadence_ticks: default_cadence_ticks(),
            series_cadence_ns: default_cadence_ns(),
            series_capacity: default_series_capacity(),
            trace_capacity: default_trace_capacity(),
            provenance_sample: default_provenance_sample(),
            provenance_capacity: default_provenance_capacity(),
        }
    }
}

impl TelemetrySpec {
    /// A spec that collects *only* provenance records at the given
    /// sampling divisor: series sampling and the lifecycle trace ring are
    /// disabled, so the overhead benchmarks isolate the cost of causal
    /// tracing itself.
    pub fn provenance_only(sample: u64) -> Self {
        Self {
            series_cadence_ticks: u64::MAX,
            series_cadence_ns: u64::MAX,
            series_capacity: 0,
            trace_capacity: 0,
            provenance_sample: sample,
            provenance_capacity: default_provenance_capacity(),
        }
    }
}

/// End-of-run per-task totals, for the harness summary table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSummary {
    /// Task index within the deployment.
    pub task: usize,
    /// Node hosting the task.
    pub node: usize,
    /// Human-readable task label.
    pub label: String,
    /// `"source"`, `"join"`, or `"sink"`.
    pub kind: String,
    /// Partial matches received over the whole run.
    pub inputs: u64,
    /// Store probes over the whole run.
    pub probes: u64,
    /// Matches emitted over the whole run.
    pub emitted: u64,
    /// Window evictions over the whole run.
    pub evictions: u64,
    /// Peak concurrently-buffered partial matches observed.
    pub peak_live: u64,
    /// Discrimination index: candidate lookups this source task appeared
    /// in (0 for join/sink tasks).
    pub considered: u64,
    /// Discrimination index: lookups admitted past the predicate bands.
    pub admitted: u64,
    /// Crash recovery: messages re-delivered to this task from peer
    /// replay logs (threaded fault mode only).
    pub replayed: u64,
    /// Crash recovery: duplicate replay deliveries to this task
    /// suppressed by the receive-log filter (threaded fault mode only).
    pub suppressed: u64,
}

/// Everything telemetry collected over one executor run.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Interpretation of every timestamp in `series` and `trace`.
    pub clock: Option<ClockDomain>,
    /// Final merged metrics registry.
    pub registry: Registry,
    /// Per-task time series.
    pub series: SeriesBuffer,
    /// Lineage trace ring.
    pub trace: TraceRing,
    /// Sampled causal provenance records (witness sets of sink matches).
    pub provenance: ProvenanceRing,
    /// Per-task output-rate estimators (event-time windows), feeding the
    /// cost-model drift monitor.
    pub rates: RateBank,
    /// End-of-run per-task totals.
    pub tasks: Vec<TaskSummary>,
}

impl RunTelemetry {
    /// Creates an empty container sized per `spec`.
    pub fn new(clock: ClockDomain, spec: &TelemetrySpec) -> Self {
        Self {
            clock: Some(clock),
            registry: Registry::new(),
            series: SeriesBuffer::new(spec.series_capacity),
            trace: TraceRing::new(spec.trace_capacity),
            provenance: ProvenanceRing::new(if spec.provenance_sample == 0 {
                0
            } else {
                spec.provenance_capacity
            }),
            rates: RateBank::new(spec.series_cadence_ticks, 0),
            tasks: Vec::new(),
        }
    }

    /// Renders the per-task summary as a plain-text table.
    pub fn task_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<5} {:<5} {:<26} {:<7} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}\n",
            "task",
            "node",
            "label",
            "kind",
            "inputs",
            "probes",
            "emitted",
            "evicted",
            "peak-live",
            "cands",
            "admitted",
            "replayed",
            "suppr"
        ));
        for t in &self.tasks {
            out.push_str(&format!(
                "{:<5} {:<5} {:<26} {:<7} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}\n",
                t.task,
                t.node,
                t.label,
                t.kind,
                t.inputs,
                t.probes,
                t.emitted,
                t.evictions,
                t.peak_live,
                t.considered,
                t.admitted,
                t.replayed,
                t.suppressed
            ));
        }
        out
    }

    /// Renders the inter-node transport counters as a one-paragraph
    /// summary, or `None` when the run shipped no frames (the simulator,
    /// or a plan without network edges).
    pub fn transport_summary(&self) -> Option<String> {
        let frames = self.registry.counter_value(names::TRANSPORT_FRAMES)?;
        if frames == 0 {
            return None;
        }
        let counter = |name| self.registry.counter_value(name).unwrap_or(0);
        let messages = counter(names::TRANSPORT_MESSAGES_FRAMED);
        let blocked = counter(names::TRANSPORT_BLOCKED_SENDS);
        let allocs = counter(names::TRANSPORT_POOL_ALLOCS);
        let reuses = counter(names::TRANSPORT_POOL_REUSES);
        let peak = self
            .registry
            .gauge_value(names::TRANSPORT_QUEUE_PEAK)
            .unwrap_or(0);
        let mean_batch = messages as f64 / frames as f64;
        let reuse_pct = if allocs + reuses > 0 {
            100.0 * reuses as f64 / (allocs + reuses) as f64
        } else {
            100.0
        };
        let mut out = format!(
            "frames {frames}  messages {messages}  mean-batch {mean_batch:.1}  \
             blocked-sends {blocked}  queue-peak {peak}  pool-reuse {reuse_pct:.1}% \
             ({reuses} reused / {allocs} fresh)\n"
        );
        if let Some([min, p25, p50, p75, max]) = self
            .registry
            .hist_value(names::TRANSPORT_BATCH_SIZE)
            .and_then(|h| h.summary())
        {
            out.push_str(&format!(
                "batch-size min {min}  p25 {p25}  p50 {p50}  p75 {p75}  max {max}\n"
            ));
        }
        Some(out)
    }

    /// Renders the event-discrimination index counters as a one-line
    /// summary, or `None` when the run injected no events through the
    /// index (legacy deployments or empty traces).
    pub fn discrimination_summary(&self) -> Option<String> {
        let considered = self
            .registry
            .counter_value(names::DISCRIMINATION_CANDIDATES)?;
        if considered == 0 {
            return None;
        }
        let counter = |name| self.registry.counter_value(name).unwrap_or(0);
        let events = counter(names::DISCRIMINATION_EVENTS);
        let admitted = counter(names::DISCRIMINATION_ADMITTED);
        let hit_ratio = 100.0 * (1.0 - admitted as f64 / considered as f64);
        let mean = considered as f64 / events.max(1) as f64;
        let mut out = format!(
            "events {events}  candidates {considered}  admitted {admitted}  \
             filtered {hit_ratio:.1}%  mean-candidates {mean:.2}\n"
        );
        if let Some([min, p25, p50, p75, max]) = self
            .registry
            .hist_value(names::DISCRIMINATION_CANDIDATE_SET)
            .and_then(|h| h.summary())
        {
            out.push_str(&format!(
                "candidate-set min {min}  p25 {p25}  p50 {p50}  p75 {p75}  max {max}\n"
            ));
        }
        Some(out)
    }

    /// Renders the crash-recovery counters as a one-paragraph summary, or
    /// `None` when the run neither checkpointed nor crashed (fault-free
    /// runs and the simulator without snapshots).
    pub fn recovery_summary(&self) -> Option<String> {
        let snapshots = self.registry.counter_value(names::RECOVERY_SNAPSHOTS)?;
        let counter = |name| self.registry.counter_value(name).unwrap_or(0);
        let crashes = counter(names::RECOVERY_CRASHES);
        if snapshots == 0 && crashes == 0 {
            return None;
        }
        let snapshot_bytes = counter(names::RECOVERY_SNAPSHOT_BYTES);
        let replayed = counter(names::RECOVERY_REPLAYED);
        let suppressed = counter(names::RECOVERY_SUPPRESSED);
        let retries = counter(names::RECOVERY_SEND_RETRIES);
        let backoff_ms = counter(names::RECOVERY_BACKOFF_NS) as f64 / 1e6;
        let recovery_ms = counter(names::RECOVERY_NS) as f64 / 1e6;
        Some(format!(
            "crashes {crashes}  snapshots {snapshots} ({snapshot_bytes} B)  \
             replayed {replayed}  suppressed {suppressed}  send-retries {retries}  \
             backoff {backoff_ms:.2} ms  recovery {recovery_ms:.2} ms\n"
        ))
    }

    /// Renders the causal-provenance collection state as a one-line
    /// summary, or `None` when tracing was disabled and nothing was
    /// sampled.
    pub fn provenance_summary(&self) -> Option<String> {
        if self.provenance.is_empty() && self.provenance.dropped() == 0 {
            return None;
        }
        let held = self.provenance.len();
        let dropped = self.provenance.dropped();
        let witnesses: usize = self.provenance.records().map(|r| r.witness.len()).sum();
        let mean_witness = witnesses as f64 / held.max(1) as f64;
        Some(format!(
            "records {held}  dropped {dropped}  mean-witness {mean_witness:.1}\n"
        ))
    }
}

/// Canonical metric names used across both executors, so registry
/// snapshots from the simulator and the threaded executor line up
/// name-for-name.
pub mod names {
    /// Primitive events injected at source tasks.
    pub const EVENTS_INJECTED: &str = "events_injected";
    /// Partial matches shipped between distinct nodes.
    pub const MESSAGES_SENT: &str = "messages_sent";
    /// Wire bytes for those messages.
    pub const BYTES_SENT: &str = "bytes_sent";
    /// Partial matches delivered node-locally (no network hop).
    pub const LOCAL_DELIVERIES: &str = "local_deliveries";
    /// Complete matches arriving at sink tasks.
    pub const SINK_MATCHES: &str = "sink_matches";
    /// Join: partial matches received.
    pub const JOIN_INPUTS: &str = "join.inputs";
    /// Join: store probes performed.
    pub const JOIN_PROBES: &str = "join.probes";
    /// Join: merges rejected by negation guards.
    pub const JOIN_GUARD_REJECTS: &str = "join.guard_rejects";
    /// Join: merge attempts after window/predicate filtering.
    pub const JOIN_MERGE_ATTEMPTS: &str = "join.merge_attempts";
    /// Join: successful merges.
    pub const JOIN_MERGE_SUCCESSES: &str = "join.merge_successes";
    /// Join: matches emitted downstream.
    pub const JOIN_EMITTED: &str = "join.emitted";
    /// Join: partial matches evicted by window expiry.
    pub const JOIN_EVICTED: &str = "join.evicted";
    /// Peak concurrently-buffered partial matches across all joins.
    pub const JOIN_PEAK_LIVE: &str = "join.peak_live_matches";
    /// Sink-side match latency histogram (event-time lag in the
    /// simulator, wall nanoseconds in the threaded executor).
    pub const LATENCY_SINK: &str = "latency.sink";
    /// Run wall time in nanoseconds.
    pub const RUN_WALL_NS: &str = "run.wall_ns";
    /// Transport: frames pushed onto inter-node channels.
    pub const TRANSPORT_FRAMES: &str = "transport.frames_sent";
    /// Transport: messages carried inside those frames.
    pub const TRANSPORT_MESSAGES_FRAMED: &str = "transport.messages_framed";
    /// Transport: `try_send` attempts rejected by a full channel.
    pub const TRANSPORT_BLOCKED_SENDS: &str = "transport.blocked_sends";
    /// Transport: frame buffers freshly allocated (pool empty).
    pub const TRANSPORT_POOL_ALLOCS: &str = "transport.pool_allocs";
    /// Transport: frame buffers recycled from the return path.
    pub const TRANSPORT_POOL_REUSES: &str = "transport.pool_reuses";
    /// Transport: peak frames in flight to any single node.
    pub const TRANSPORT_QUEUE_PEAK: &str = "transport.queue_peak";
    /// Transport: realized batch sizes (messages per frame).
    pub const TRANSPORT_BATCH_SIZE: &str = "transport.batch_size";
    /// Sink matches whose latency sample had to be discarded because no
    /// injection timestamp existed for the newest constituent (e.g. it
    /// was injected before a resumed-from snapshot).
    pub const LATENCY_SAMPLES_DROPPED: &str = "latency.samples_dropped";
    /// Recovery: injected node crashes taken.
    pub const RECOVERY_CRASHES: &str = "recovery.crashes";
    /// Recovery: chunk-boundary snapshots written.
    pub const RECOVERY_SNAPSHOTS: &str = "recovery.snapshots_taken";
    /// Recovery: cumulative encoded snapshot bytes.
    pub const RECOVERY_SNAPSHOT_BYTES: &str = "recovery.snapshot_bytes";
    /// Recovery: messages re-delivered from peer replay logs.
    pub const RECOVERY_REPLAYED: &str = "recovery.replayed_messages";
    /// Recovery: duplicate replay deliveries suppressed by receivers.
    pub const RECOVERY_SUPPRESSED: &str = "recovery.suppressed_sends";
    /// Recovery: sender retry rounds against an unresponsive peer.
    pub const RECOVERY_SEND_RETRIES: &str = "recovery.send_retries";
    /// Recovery: total nanoseconds slept in sender backoff.
    pub const RECOVERY_BACKOFF_NS: &str = "recovery.backoff_ns";
    /// Recovery: wall nanoseconds from crash to restored state.
    pub const RECOVERY_NS: &str = "recovery.recovery_ns";
    /// Recovery: distribution of individual backoff sleeps (ns).
    pub const RECOVERY_BACKOFF_SLEEP: &str = "recovery.backoff_sleep_ns";
    /// Discrimination index: events looked up.
    pub const DISCRIMINATION_EVENTS: &str = "discrimination.events";
    /// Discrimination index: source candidates considered across lookups.
    pub const DISCRIMINATION_CANDIDATES: &str = "discrimination.candidates_considered";
    /// Discrimination index: candidates admitted past the band filter.
    pub const DISCRIMINATION_ADMITTED: &str = "discrimination.candidates_admitted";
    /// Discrimination index: per-event candidate-set size distribution.
    pub const DISCRIMINATION_CANDIDATE_SET: &str = "discrimination.candidate_set_size";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_fill_missing_fields() {
        let spec: TelemetrySpec = serde_json::from_str("{\"series_cadence_ticks\": 50}").unwrap();
        assert_eq!(spec.series_cadence_ticks, 50);
        assert_eq!(spec.series_capacity, default_series_capacity());
        assert_eq!(spec.trace_capacity, default_trace_capacity());
        let spec: TelemetrySpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec, TelemetrySpec::default());
    }

    #[test]
    fn task_table_renders_every_task() {
        let mut rt = RunTelemetry::new(ClockDomain::VirtualTicks, &TelemetrySpec::default());
        rt.tasks.push(TaskSummary {
            task: 0,
            node: 1,
            label: "J0@N1".into(),
            kind: "join".into(),
            inputs: 10,
            probes: 20,
            emitted: 5,
            evictions: 2,
            peak_live: 7,
            considered: 0,
            admitted: 0,
            replayed: 0,
            suppressed: 0,
        });
        let table = rt.task_table();
        assert!(table.contains("J0@N1"));
        assert!(table.contains("peak-live"));
        assert!(table.contains("replayed"));
        assert_eq!(table.lines().count(), 2);
    }

    #[test]
    fn provenance_only_spec_isolates_tracing() {
        let spec = TelemetrySpec::provenance_only(64);
        assert_eq!(spec.provenance_sample, 64);
        assert_eq!(spec.series_capacity, 0);
        assert_eq!(spec.trace_capacity, 0);
        let rt = RunTelemetry::new(ClockDomain::VirtualTicks, &spec);
        assert_eq!(rt.provenance.dropped(), 0);
        // A zero sample allocates no provenance ring at all.
        let off = RunTelemetry::new(ClockDomain::VirtualTicks, &TelemetrySpec::default());
        let mut ring = off.provenance;
        ring.push(ProvenanceRecord {
            t: 0,
            node: 0,
            task: 0,
            query: 0,
            match_hash: 0,
            witness: vec![],
            absence: vec![],
        });
        assert!(ring.is_empty());
    }

    #[test]
    fn recovery_summary_gated_on_counters() {
        let mut rt = RunTelemetry::new(ClockDomain::WallNanos, &TelemetrySpec::default());
        assert!(rt.recovery_summary().is_none());
        let c = rt.registry.counter(names::RECOVERY_SNAPSHOTS);
        rt.registry.inc(c, 4);
        let c = rt.registry.counter(names::RECOVERY_CRASHES);
        rt.registry.inc(c, 1);
        let text = rt.recovery_summary().expect("counters present");
        assert!(text.contains("crashes 1"));
        assert!(text.contains("snapshots 4"));
    }
}
