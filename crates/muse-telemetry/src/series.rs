//! Labeled per-task time series.
//!
//! Each sample is one [`SeriesRecord`] — a fixed set of instantaneous
//! gauges (queue depth, live partial matches, watermark lag) plus
//! per-interval deltas (inputs, probes, evictions, emitted) for one task at
//! one sample instant. Samples accumulate in a bounded [`SeriesBuffer`]
//! (oldest dropped first, drop count kept) and export as JSONL, one record
//! per line.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What the series timestamps mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockDomain {
    /// `t` is the simulator's virtual clock (event-time ticks).
    VirtualTicks,
    /// `t` is wall-clock nanoseconds since run start.
    WallNanos,
}

/// One sample of one task's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesRecord {
    /// Sample timestamp, in the buffer's [`ClockDomain`].
    pub t: u64,
    /// Task index within the deployment.
    pub task: usize,
    /// Node hosting the task.
    pub node: usize,
    /// Human-readable task label (e.g. `"J2@N1 SEQ(A,B)"`).
    pub label: String,
    /// Pending deliveries (sim: global heap depth; threaded: messages
    /// drained since the previous sample).
    pub queue_depth: u64,
    /// Live (buffered) partial matches in the task's join stores.
    pub live_matches: u64,
    /// Global clock minus the newest timestamp this task has seen.
    pub watermark_lag: u64,
    /// Partial matches received since the previous sample.
    pub inputs: u64,
    /// Store probes since the previous sample.
    pub probes: u64,
    /// Window evictions since the previous sample.
    pub evictions: u64,
    /// Matches emitted since the previous sample.
    pub emitted: u64,
}

/// Bounded FIFO of series samples.
#[derive(Debug, Clone, Default)]
pub struct SeriesBuffer {
    records: VecDeque<SeriesRecord>,
    capacity: usize,
    dropped: u64,
}

impl SeriesBuffer {
    /// Creates a buffer holding at most `capacity` records (0 disables
    /// collection entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn push(&mut self, rec: SeriesRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Records currently buffered, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SeriesRecord> {
        self.records.iter()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or rejected) due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves all records from `other` into this buffer, preserving order.
    pub fn absorb(&mut self, other: SeriesBuffer) {
        self.dropped += other.dropped;
        for rec in other.records {
            self.push(rec);
        }
    }

    /// Re-sorts the buffered records by `(t, task)` — used after absorbing
    /// per-shard buffers so the merged series reads in time order.
    pub fn sort_by_time(&mut self) {
        self.records
            .make_contiguous()
            .sort_by_key(|r| (r.t, r.task));
    }

    /// Serializes every buffered record as JSONL into `out`.
    pub fn write_jsonl<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        for rec in &self.records {
            let line = serde_json::to_string(rec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, task: usize) -> SeriesRecord {
        SeriesRecord {
            t,
            task,
            node: 0,
            label: format!("T{task}"),
            queue_depth: t % 7,
            live_matches: t % 5,
            watermark_lag: 0,
            inputs: 1,
            probes: 2,
            evictions: 0,
            emitted: 1,
        }
    }

    #[test]
    fn bounded_fifo_drops_oldest() {
        let mut buf = SeriesBuffer::new(3);
        for t in 0..5 {
            buf.push(rec(t, 0));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let ts: Vec<u64> = buf.records().map(|r| r.t).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_disables_collection() {
        let mut buf = SeriesBuffer::new(0);
        buf.push(rec(1, 0));
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut buf = SeriesBuffer::new(8);
        buf.push(rec(10, 1));
        buf.push(rec(20, 2));
        let mut out = Vec::new();
        buf.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: SeriesRecord = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(back, rec(20, 2));
    }

    #[test]
    fn absorb_preserves_order_and_drops() {
        let mut a = SeriesBuffer::new(4);
        a.push(rec(1, 0));
        let mut b = SeriesBuffer::new(2);
        for t in 2..6 {
            b.push(rec(t, 1));
        }
        a.absorb(b);
        let ts: Vec<u64> = a.records().map(|r| r.t).collect();
        assert_eq!(ts, vec![1, 4, 5]);
        assert_eq!(a.dropped(), 2);
    }
}
