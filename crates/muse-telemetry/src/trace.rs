//! Structured trace records for match-lineage reconstruction.
//!
//! Every significant lifecycle step of an event/partial match gets one
//! [`TraceRecord`] in a bounded [`TraceRing`]: injection at a source task,
//! a successful merge inside a join, a message shipped between nodes, and a
//! final emission at a sink. Exported as JSONL, the ring lets a match at a
//! sink be traced back through every node that contributed to it.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One step in a match's lineage. `t` is always in the run's clock domain
/// (virtual ticks in the simulator, wall nanoseconds in the threaded
/// executor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A primitive event entered the system at a source task.
    EventInjected {
        /// Injection timestamp.
        t: u64,
        /// Node the event originated at.
        node: usize,
        /// Source task that accepted it.
        task: usize,
        /// Event type id.
        event_type: u32,
        /// Global sequence number of the event (the lineage key: sink
        /// matches list their constituent events by this id).
        seq: u64,
    },
    /// Two partial matches merged successfully inside a join task.
    MatchMerged {
        /// Merge timestamp.
        t: u64,
        /// Node hosting the join.
        node: usize,
        /// Join task index.
        task: usize,
        /// Number of primitive events in the merged match.
        size: usize,
        /// Event-time span (`last - first`) of the merged match.
        span: u64,
    },
    /// A partial match crossed the network between two nodes.
    MessageShipped {
        /// Ship timestamp.
        t: u64,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Sending task index (one record per remote target node; the
        /// executors ship a match to a node once and multiplex it).
        task: usize,
        /// Wire size in bytes.
        bytes: u64,
    },
    /// A complete match was emitted at a sink task.
    SinkMatch {
        /// Emission timestamp.
        t: u64,
        /// Sink node.
        node: usize,
        /// Sink task index.
        task: usize,
        /// Number of primitive events in the match.
        size: usize,
        /// Timestamp of the newest constituent event.
        last_time: u64,
    },
}

impl TraceRecord {
    /// The record's timestamp, whatever its kind.
    pub fn t(&self) -> u64 {
        match self {
            TraceRecord::EventInjected { t, .. }
            | TraceRecord::MatchMerged { t, .. }
            | TraceRecord::MessageShipped { t, .. }
            | TraceRecord::SinkMatch { t, .. } => *t,
        }
    }
}

/// Bounded ring of trace records (oldest evicted first).
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` records (0 disables
    /// tracing entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// True when the ring records at all (capacity > 0). Hot paths check
    /// this before constructing a [`TraceRecord`]: the capacity-0 reject
    /// inside [`Self::push`] still pays for building the record, which is
    /// measurable at per-event call rates.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity != 0
    }

    /// Appends a record, evicting the oldest if full.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or rejected) due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves all records from `other` into this ring, then re-sorts by
    /// timestamp so shard-merged traces read in time order.
    pub fn absorb(&mut self, other: TraceRing) {
        self.dropped += other.dropped;
        for rec in other.records {
            self.push(rec);
        }
        self.records.make_contiguous().sort_by_key(|r| r.t());
    }

    /// Serializes every held record as JSONL into `out`.
    pub fn write_jsonl<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        for rec in &self.records {
            let line = serde_json::to_string(rec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_drops() {
        let mut ring = TraceRing::new(2);
        for t in 0..4 {
            ring.push(TraceRecord::EventInjected {
                t,
                node: 0,
                task: 0,
                event_type: 1,
                seq: t,
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        let ts: Vec<u64> = ring.records().map(|r| r.t()).collect();
        assert_eq!(ts, vec![2, 3]);
    }

    #[test]
    fn records_roundtrip_as_jsonl() {
        let mut ring = TraceRing::new(8);
        ring.push(TraceRecord::MessageShipped {
            t: 5,
            from: 0,
            to: 1,
            task: 3,
            bytes: 24,
        });
        ring.push(TraceRecord::SinkMatch {
            t: 9,
            node: 1,
            task: 3,
            size: 3,
            last_time: 9,
        });
        let mut out = Vec::new();
        ring.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let back: Vec<TraceRecord> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].t(), 9);
        assert!(matches!(
            back[0],
            TraceRecord::MessageShipped { bytes: 24, .. }
        ));
    }

    #[test]
    fn absorb_sorts_by_time() {
        let mut a = TraceRing::new(8);
        a.push(TraceRecord::SinkMatch {
            t: 10,
            node: 0,
            task: 0,
            size: 1,
            last_time: 10,
        });
        let mut b = TraceRing::new(8);
        b.push(TraceRecord::SinkMatch {
            t: 4,
            node: 1,
            task: 1,
            size: 1,
            last_time: 4,
        });
        a.absorb(b);
        let ts: Vec<u64> = a.records().map(|r| r.t()).collect();
        assert_eq!(ts, vec![4, 10]);
    }
}
