//! Windowed output-rate estimators for the live cost-model drift monitor.
//!
//! One [`RateEstimator`] per deployment task observes that task's emitted
//! matches bucketed into fixed-length event-time windows, and serves three
//! read-time views: the whole-run mean rate, the mean over the most recent
//! windows, and an EWMA folded oldest-to-newest over the retained windows.
//! Estimators are mergeable across threaded-executor shards: counts sum at
//! aligned absolute window indices, so a shard-merged estimator equals the
//! estimator a single-threaded observer would have built. All smoothing is
//! computed at read time from the retained counts — nothing incremental is
//! stored — which is what keeps the merge exact.

use serde::{Deserialize, Serialize};

/// Windows retained per estimator; older counts fold into the run totals
/// (`total`, `first_t`, `last_t`) and leave the per-window view.
const MAX_WINDOWS: usize = 32;

/// Windows folded into [`RateEstimator::recent_rate`].
const RECENT_WINDOWS: usize = 8;

/// Event-time-windowed counter of one task's output stream.
///
/// Timestamps are virtual ticks in both executors (the threaded executor
/// feeds the *event time* of each emitted match, not wall time), so rates
/// are per-tick and directly comparable to the §4.4 cost model after unit
/// conversion.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RateEstimator {
    /// Window length in ticks (0 behaves as 1).
    window_len: u64,
    /// Absolute window index of `counts[0]`.
    base_idx: u64,
    /// Per-window output counts, oldest first (bounded by `MAX_WINDOWS`).
    counts: Vec<u64>,
    /// Total outputs over the whole run (survives window rotation).
    total: u64,
    /// Earliest observed timestamp.
    first_t: Option<u64>,
    /// Latest observed timestamp.
    last_t: u64,
}

impl RateEstimator {
    /// Creates an estimator with the given window length in ticks.
    pub fn new(window_len: u64) -> Self {
        Self {
            window_len: window_len.max(1),
            ..Default::default()
        }
    }

    fn window(&self) -> u64 {
        self.window_len.max(1)
    }

    /// Adds `n` at absolute window index `idx`, rotating out windows that
    /// fall behind the `MAX_WINDOWS` horizon (their counts stay in
    /// `total`). Shared by [`Self::record`] and [`Self::merge`].
    fn add_at(&mut self, idx: u64, n: u64) {
        if self.counts.is_empty() {
            self.base_idx = idx;
        }
        if idx < self.base_idx {
            // Out-of-order behind the retained horizon: fold into the
            // oldest retained window rather than shifting everything.
            self.counts[0] += n;
            return;
        }
        if idx >= self.base_idx + MAX_WINDOWS as u64 {
            let new_base = idx + 1 - MAX_WINDOWS as u64;
            let shift = (new_base - self.base_idx) as usize;
            if shift >= self.counts.len() {
                self.counts.clear();
            } else {
                self.counts.drain(..shift);
            }
            self.base_idx = new_base;
        }
        let off = (idx - self.base_idx) as usize;
        if off >= self.counts.len() {
            self.counts.resize(off + 1, 0);
        }
        self.counts[off] += n;
    }

    /// Records `n` outputs at tick `t`.
    #[inline]
    pub fn record(&mut self, t: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.total += n;
        if self.first_t.is_none_or(|f| t < f) {
            self.first_t = Some(t);
        }
        self.last_t = self.last_t.max(t);
        // Fast path for the overwhelmingly common case — `t` lands in the
        // newest retained window: one multiply and two compares instead of
        // the division in the general path. Hot per-emission call sites
        // make that division measurable.
        let w = self.window();
        let len = self.counts.len() as u64;
        if len > 0 {
            let lo = (self.base_idx + len - 1) * w;
            if t >= lo && t - lo < w {
                *self.counts.last_mut().expect("counts non-empty") += n;
                return;
            }
        }
        self.add_at(t / w, n);
    }

    /// Total outputs observed over the whole run.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Whole-run mean rate per tick over the observed span
    /// `[first_t, last_t]`; 0.0 before any observation.
    pub fn mean_rate(&self) -> f64 {
        match self.first_t {
            Some(first) => self.total as f64 / (self.last_t - first + 1) as f64,
            None => 0.0,
        }
    }

    /// Mean rate per tick over `total` outputs spread across an externally
    /// known duration (e.g. the trace horizon) — the denominator the drift
    /// report uses so silent tasks read as rate 0, not "no data".
    pub fn rate_over(&self, duration_ticks: u64) -> f64 {
        self.total as f64 / duration_ticks.max(1) as f64
    }

    /// Mean rate per tick over the newest retained windows (up to
    /// [`RECENT_WINDOWS`]); 0.0 before any observation.
    pub fn recent_rate(&self) -> f64 {
        let k = self.counts.len().min(RECENT_WINDOWS);
        if k == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts[self.counts.len() - k..].iter().sum();
        sum as f64 / (k as u64 * self.window()) as f64
    }

    /// EWMA of per-window rates folded oldest-to-newest over the retained
    /// windows (`alpha` weights the newer window); 0.0 before any
    /// observation.
    pub fn ewma_rate(&self, alpha: f64) -> f64 {
        let alpha = alpha.clamp(0.0, 1.0);
        let w = self.window() as f64;
        let mut it = self.counts.iter();
        let Some(&first) = it.next() else {
            return 0.0;
        };
        let mut ewma = first as f64 / w;
        for &c in it {
            ewma = alpha * (c as f64 / w) + (1.0 - alpha) * ewma;
        }
        ewma
    }

    /// Accumulates another shard's estimator: totals and span combine,
    /// and per-window counts sum at aligned absolute indices.
    pub fn merge(&mut self, other: &RateEstimator) {
        if other.total == 0 {
            return;
        }
        if self.total == 0 {
            *self = other.clone();
            return;
        }
        self.total += other.total;
        self.first_t = match (self.first_t, other.first_t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_t = self.last_t.max(other.last_t);
        for (i, &c) in other.counts.iter().enumerate() {
            if c > 0 {
                self.add_at(other.base_idx + i as u64, c);
            }
        }
    }
}

/// Per-task rate estimators of one run, indexed by deployment task slot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RateBank {
    window_len: u64,
    slots: Vec<RateEstimator>,
}

impl RateBank {
    /// Creates a bank of `tasks` estimators sharing one window length.
    pub fn new(window_len: u64, tasks: usize) -> Self {
        let window_len = window_len.max(1);
        Self {
            window_len,
            slots: (0..tasks).map(|_| RateEstimator::new(window_len)).collect(),
        }
    }

    /// The shared window length in ticks.
    pub fn window_len(&self) -> u64 {
        self.window_len.max(1)
    }

    /// Records `n` outputs of task `slot` at tick `t`, growing the bank on
    /// demand.
    #[inline]
    pub fn record(&mut self, slot: usize, t: u64, n: u64) {
        if slot >= self.slots.len() {
            self.slots
                .resize_with(slot + 1, || RateEstimator::new(self.window_len.max(1)));
        }
        self.slots[slot].record(t, n);
    }

    /// The estimator of task `slot`, if the bank has grown that far.
    pub fn get(&self, slot: usize) -> Option<&RateEstimator> {
        self.slots.get(slot)
    }

    /// Number of task slots held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_empty())
    }

    /// Accumulates another shard's bank slot-by-slot.
    pub fn merge(&mut self, other: &RateBank) {
        if self.window_len == 0 {
            self.window_len = other.window_len;
        }
        if self.slots.len() < other.slots.len() {
            self.slots.resize_with(other.slots.len(), || {
                RateEstimator::new(self.window_len.max(1))
            });
        }
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_over_span() {
        let mut r = RateEstimator::new(10);
        assert_eq!(r.mean_rate(), 0.0);
        // 20 outputs over ticks 0..=99 → 0.2 per tick.
        for t in 0..100 {
            if t % 5 == 0 {
                r.record(t, 1);
            }
        }
        assert!((r.mean_rate() - 0.2).abs() < 0.011, "{}", r.mean_rate());
        assert_eq!(r.total(), 20);
        assert!((r.rate_over(100) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn window_rotation_keeps_totals() {
        let mut r = RateEstimator::new(1);
        for t in 0..1000 {
            r.record(t, 1);
        }
        // Far more than MAX_WINDOWS windows passed; totals still exact.
        assert_eq!(r.total(), 1000);
        assert!((r.mean_rate() - 1.0).abs() < 1e-12);
        assert!((r.recent_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recent_and_ewma_track_a_rate_shift() {
        let mut r = RateEstimator::new(10);
        // 100 ticks at 1/tick, then 100 ticks at 3/tick.
        for t in 0..100 {
            r.record(t, 1);
        }
        for t in 100..200 {
            r.record(t, 3);
        }
        // Whole-run mean sits between the regimes; recent is at the new
        // rate; an aggressive EWMA is close to it.
        assert!((r.mean_rate() - 2.0).abs() < 0.02);
        assert!((r.recent_rate() - 3.0).abs() < 1e-12);
        assert!(r.ewma_rate(0.5) > 2.5);
    }

    #[test]
    fn merge_equals_single_observer() {
        // Interleave one stream across two shards; the merge must equal
        // the single-observer estimator exactly.
        let mut whole = RateEstimator::new(10);
        let mut a = RateEstimator::new(10);
        let mut b = RateEstimator::new(10);
        for t in 0..500 {
            whole.record(t, 1 + t % 3);
            if t % 2 == 0 {
                a.record(t, 1 + t % 3);
            } else {
                b.record(t, 1 + t % 3);
            }
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        assert_eq!(a.mean_rate(), whole.mean_rate());
        assert_eq!(a.recent_rate(), whole.recent_rate());
        assert_eq!(a, whole);
    }

    #[test]
    fn sparse_time_jump_stays_bounded() {
        let mut r = RateEstimator::new(1);
        r.record(0, 1);
        r.record(1_000_000_000, 1);
        assert_eq!(r.total(), 2);
        assert!(r.recent_rate() > 0.0);
    }

    #[test]
    fn bank_grows_and_merges() {
        let mut a = RateBank::new(10, 1);
        a.record(0, 5, 2);
        a.record(3, 5, 4);
        let mut b = RateBank::new(10, 2);
        b.record(3, 15, 1);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(3).unwrap().total(), 5);
        assert_eq!(a.get(0).unwrap().total(), 2);
        assert!(a.get(1).unwrap().is_empty());
        assert!(!a.is_empty());
    }
}
