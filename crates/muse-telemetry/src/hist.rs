//! Log-bucketed streaming histogram with fixed memory.
//!
//! Values are `u64` (ticks or nanoseconds); the bucket layout is HDR-style:
//! values below [`SUB_BUCKETS`] are recorded exactly, every larger octave
//! `[2^k, 2^{k+1})` is split into [`SUB_BUCKETS`] equal sub-buckets. A
//! bucket's width is therefore at most `1/SUB_BUCKETS` of its lower bound,
//! so any quantile estimate is within [`LogHistogram::max_relative_error`]
//! of the exact order statistic — with `min` and `max` tracked exactly, the
//! p0 and p100 estimates are exact. Recording is two shifts and an
//! increment; memory is a fixed `976 × 8` byte bucket array regardless of
//! how many values are recorded (this is what lets the runtime keep a
//! latency distribution per run without the unbounded latency vectors the
//! paper's Fig. 8 summaries previously required).

use serde::{Deserialize, Serialize};

/// Sub-buckets per octave; also the bound below which values are exact.
pub const SUB_BUCKETS: u64 = 16;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 4
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) + (64 - SUB_BITS as usize) * SUB_BUCKETS as usize;

/// A mergeable, fixed-memory streaming histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(into = "HistSnapshot", from = "HistSnapshot")]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records a value `n` times.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The guaranteed bound on a quantile estimate's relative error: the
    /// estimate `e` for exact order statistic `x` satisfies
    /// `|e − x| ≤ x / SUB_BUCKETS`.
    pub fn max_relative_error() -> f64 {
        1.0 / SUB_BUCKETS as f64
    }

    /// Quantile estimate for `q ∈ [0, 1]` using the same nearest-rank rule
    /// as the runtime's exact percentiles (`rank = round(q · (n − 1))`),
    /// clamped to the exact `[min, max]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        // The extreme order statistics are tracked exactly.
        if rank == 0 {
            return Some(self.min);
        }
        if rank >= self.count - 1 {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return Some(bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Five-number summary `(min, p25, p50, p75, max)`; `None` when empty.
    pub fn summary(&self) -> Option<[u64; 5]> {
        Some([
            self.quantile(0.0)?,
            self.quantile(0.25)?,
            self.quantile(0.5)?,
            self.quantile(0.75)?,
            self.quantile(1.0)?,
        ])
    }

    /// Accumulates another histogram. Merging is associative and
    /// commutative, so per-shard histograms can be combined in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Occupied buckets as `(lower bound, upper bound, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let top = 63 - v.leading_zeros(); // v ∈ [2^top, 2^{top+1}), top ≥ SUB_BITS
        let sub = ((v >> (top - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
        SUB_BUCKETS as usize + (top - SUB_BITS) as usize * SUB_BUCKETS as usize + sub
    }
}

/// Half-open value range `[lo, hi)` of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_BUCKETS as usize {
        (i as u64, i as u64 + 1)
    } else {
        let oct = (i - SUB_BUCKETS as usize) / SUB_BUCKETS as usize + SUB_BITS as usize;
        let sub = ((i - SUB_BUCKETS as usize) % SUB_BUCKETS as usize) as u64;
        let width = 1u64 << (oct - SUB_BITS as usize);
        let lo = (SUB_BUCKETS + sub) << (oct - SUB_BITS as usize);
        (lo, lo.saturating_add(width))
    }
}

fn bucket_mid(i: usize) -> u64 {
    let (lo, hi) = bucket_bounds(i);
    lo + (hi - 1 - lo) / 2
}

/// Compact serialized form of a [`LogHistogram`]: only occupied buckets.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Exact minimum (`u64::MAX` when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Occupied buckets as `(bucket index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Quantile estimate over the snapshot (same semantics as
    /// [`LogHistogram::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        if rank == 0 {
            return Some(self.min);
        }
        if rank >= self.count - 1 {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum > rank {
                return Some(bucket_mid(i as usize).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl From<LogHistogram> for HistSnapshot {
    fn from(h: LogHistogram) -> Self {
        Self {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

impl From<HistSnapshot> for LogHistogram {
    fn from(s: HistSnapshot) -> Self {
        let mut h = LogHistogram::new();
        for &(i, c) in &s.buckets {
            if (i as usize) < NUM_BUCKETS {
                h.counts[i as usize] = c;
            }
        }
        h.count = s.count;
        h.sum = s.sum;
        h.min = s.min;
        h.max = s.max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let rank = (q * (SUB_BUCKETS - 1) as f64).round() as u64;
            assert_eq!(h.quantile(q), Some(rank));
        }
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.summary(), None);
    }

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 3, (1u64 << shift) - 1] {
                values.push((1u64 << shift).saturating_add(off));
            }
        }
        values.sort_unstable();
        values.dedup();
        let mut prev = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "v={v} i={i}");
            assert!(i >= prev, "index must be monotone in the value (v={v})");
            let (lo, hi) = bucket_bounds(i);
            // `hi` saturates to u64::MAX for the topmost bucket.
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "v={v} not in [{lo},{hi})"
            );
            prev = i;
        }
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    /// Satellite requirement: quantile error bounds against exact sorted
    /// percentiles on random data.
    #[test]
    fn quantile_error_bounds_vs_exact_percentiles() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for scale in [100u64, 10_000, 1_000_000_000] {
            let mut values: Vec<u64> = (0..5_000).map(|_| rng.gen_range(0..scale)).collect();
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let rank = (q * (values.len() - 1) as f64).round() as usize;
                let exact = values[rank] as f64;
                let est = h.quantile(q).unwrap() as f64;
                let bound = exact * LogHistogram::max_relative_error() + 1.0;
                assert!(
                    (est - exact).abs() <= bound,
                    "scale {scale} q {q}: est {est} exact {exact} bound {bound}"
                );
            }
            // p0/p100 are exact thanks to the tracked min/max.
            assert_eq!(h.quantile(0.0), Some(values[0]));
            assert_eq!(h.quantile(1.0), Some(*values.last().unwrap()));
        }
    }

    /// Satellite requirement: merging per-shard histograms is associative.
    #[test]
    fn merge_associativity_across_shards() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let shards: Vec<LogHistogram> = (0..4)
            .map(|_| {
                let mut h = LogHistogram::new();
                for _ in 0..1_000 {
                    h.record(rng.gen_range(0..1_000_000u64));
                }
                h
            })
            .collect();
        // ((a ⊕ b) ⊕ c) ⊕ d
        let mut left = shards[0].clone();
        for s in &shards[1..] {
            left.merge(s);
        }
        // a ⊕ (b ⊕ (c ⊕ d))
        let mut right = shards[3].clone();
        for s in shards[..3].iter().rev() {
            let mut acc = s.clone();
            acc.merge(&right);
            right = acc;
        }
        assert_eq!(left, right);
        // Commutes, too.
        let mut rev = shards[3].clone();
        for s in shards[..3].iter().rev() {
            rev.merge(s);
        }
        assert_eq!(left, rev);
        // Merged quantiles match a histogram over the union stream.
        assert_eq!(left.count(), 4_000);
    }

    #[test]
    fn merge_equals_union_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut u = LogHistogram::new();
        for v in 0..1_000u64 {
            let x = v * v % 7_919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            u.record(x);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut h = LogHistogram::new();
        for v in [0u64, 5, 17, 300, 1 << 40] {
            h.record(v);
        }
        let snap = HistSnapshot::from(h.clone());
        assert_eq!(snap.quantile(0.5), h.quantile(0.5));
        let back = LogHistogram::from(snap.clone());
        assert_eq!(back, h);
        let json = serde_json::to_string(&h).unwrap();
        let parsed: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, h);
    }
}
