//! The paper's motivating scenario (Fig. 1 / Fig. 2): autonomous transport
//! robots detecting obstacles.
//!
//! ```text
//! cargo run --example factory_robots
//! ```
//!
//! Walks through the model concepts on the running example: event type
//! bindings, query projections, beneficial projections, the constructed
//! MuSE graph (exported as Graphviz DOT), and the cost comparison of the
//! three strategies from Fig. 1 (naive, single-sink optimized, MuSE).

use muse_core::algorithms::pruning;
use muse_core::binding::enumerate_bindings;
use muse_core::graph::PlanContext;
use muse_core::prelude::*;
use muse_core::projection::all_projections;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    let c = catalog.add_event_type("C")?;
    let l = catalog.add_event_type("L")?;
    let f = catalog.add_event_type("F")?;

    // Fig. 2's network Γ: four nodes.
    let network = NetworkBuilder::new(4, 3)
        .node(NodeId(0), [c, f])
        .node(NodeId(1), [c, l])
        .node(NodeId(2), [l])
        .node(NodeId(3), [f])
        .rate(c, 100.0)
        .rate(l, 100.0)
        .rate(f, 1.0)
        .build();

    let query = parse_query(
        "PATTERN SEQ(AND(C c1, L l1), F f1) WITHIN 10s",
        QueryId(0),
        &mut catalog,
        &ParserOptions::default(),
    )?;
    println!("query q1 = {}\n", query.render(&catalog));

    // --- Event type bindings (§4.1, Fig. 2 middle) ----------------------
    println!("event type bindings 𝔈(Γ, q1):");
    for binding in enumerate_bindings(&query, query.prims(), &network, 1000)? {
        println!("  {}", binding.render(&query, &catalog));
    }

    // --- Query projections (§4.2, Fig. 2 bottom) ------------------------
    println!("\nprojections Π(q1) and the beneficial-projection test (Def. 13):");
    for projection in all_projections(&query) {
        let rate = pruning::projection_rate(&query, projection.prims, &network)?;
        let beneficial = pruning::is_beneficial(&query, projection.prims, &network)?;
        println!(
            "  {:24}  r̂ = {:>9.1}   beneficial: {}",
            projection.root.render(query.prim_types(), &catalog),
            rate,
            beneficial
        );
    }

    // --- Fig. 1's three strategies --------------------------------------
    let central = centralized_cost(std::slice::from_ref(&query), &network);
    let (node, naive) = muse_core::algorithms::baselines::naive_single_node_cost(
        std::slice::from_ref(&query),
        &network,
    );
    let oop = optimal_operator_placement(&query, &network);
    let plan = amuse(&query, &network, &AMuseConfig::default())?;
    println!("\ncosts (rate of events crossing the network):");
    println!("  (a) naive, all events to {node:?}:   {naive:8.1}");
    println!("  (b) optimized single-sink (oOP):  {:8.1}", oop.cost);
    println!("  (c) MuSE graph (aMuSE):           {:8.1}", plan.cost);
    println!("  centralized reference:            {central:8.1}");
    println!(
        "\nMuSE graph: {} vertices, {} edges, sinks at {:?}",
        plan.graph.num_vertices(),
        plan.graph.num_edges(),
        plan.sinks.iter().map(|v| v.node).collect::<Vec<_>>()
    );

    // --- The MuSE graph itself, as Graphviz DOT -------------------------
    let ctx = PlanContext::new(std::slice::from_ref(&query), &network, &plan.table);
    plan.graph
        .check_correct(&ctx, 100_000)
        .expect("correct plan");
    println!("\nGraphviz DOT (pipe into `dot -Tsvg`):\n");
    println!("{}", plan.graph.to_dot(&ctx, &catalog));
    Ok(())
}
