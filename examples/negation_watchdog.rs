//! Negation (`NSEQ`) end-to-end: a watchdog pattern over a device fleet.
//!
//! ```text
//! cargo run --release --example negation_watchdog
//! ```
//!
//! Query: an error (`E`) followed by a restart (`R`) **without** a
//! maintenance action (`M`) in between — `NSEQ(E, M, R)` — flags restarts
//! that happened without being serviced. Negation requires *negation-closed*
//! projections (Def. 9 of the paper): any projection retaining the negated
//! maintenance events must retain the full context, so the absence check
//! stays unambiguous. The example shows how the planner handles this and
//! that distributed execution still matches the centralized ground truth.

use muse_core::graph::PlanContext;
use muse_core::prelude::*;
use muse_core::projection::all_projections;
use muse_runtime::matcher::Evaluator;
use muse_runtime::sim::{run_simulation, SimConfig};
use muse_runtime::Deployment;
use muse_sim::traces::{generate_traces, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    let e = catalog.add_event_type("Error")?;
    let m = catalog.add_event_type("Maint")?;
    let r = catalog.add_event_type("Restart")?;

    // Four devices; maintenance is performed by two service nodes only.
    let network = NetworkBuilder::new(4, 3)
        .node(NodeId(0), [e, r])
        .node(NodeId(1), [e, r, m])
        .node(NodeId(2), [e, r])
        .node(NodeId(3), [e, r, m])
        .rate(e, 8.0)
        .rate(r, 6.0)
        .rate(m, 1.0)
        .build();

    let query = parse_query(
        "PATTERN NSEQ(Error e1, Maint m1, Restart r1) WITHIN 8s",
        QueryId(0),
        &mut catalog,
        &ParserOptions::default(),
    )?;
    println!("query: unserviced restarts = {}", query.render(&catalog));
    println!(
        "negated primitives: {:?} (events never appear in matches,\n\
         their absence is checked between the error and the restart)\n",
        query.negated_prims()
    );

    // Negation-closure restricts the usable projections.
    println!("projections Π(q) (negation-closed only):");
    for p in all_projections(&query) {
        println!("  {}", p.root.render(query.prim_types(), &catalog));
    }

    let plan = amuse(&query, &network, &AMuseConfig::default())?;
    let ctx = PlanContext::new(std::slice::from_ref(&query), &network, &plan.table);
    plan.graph
        .check_correct(&ctx, 1_000_000)
        .expect("correct plan");
    println!(
        "\nplan: cost {:.1} (centralized {:.1}), {} vertices",
        plan.cost,
        centralized_cost(std::slice::from_ref(&query), &network),
        plan.graph.num_vertices()
    );

    let events = generate_traces(
        &network,
        &TraceConfig {
            duration: 120.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.02,
            key_domain: 0,
            band_domain: 0,
            seed: 11,
        },
    );
    let deployment = Deployment::new(&plan.graph, &ctx);
    let report = run_simulation(&deployment, &events, &SimConfig::default());
    let ground_truth = Evaluator::for_query(&query).run(&events);
    println!(
        "events: {}   unserviced restarts found: {} (ground truth {})",
        report.metrics.events_injected,
        report.matches[0].len(),
        ground_truth.len()
    );
    assert_eq!(report.matches[0].len(), ground_truth.len());
    println!("distributed negation matches the centralized ground truth ✓");
    Ok(())
}
