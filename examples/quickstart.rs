//! Quickstart: plan and execute a query over a small event-sourced network.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's running example (three transport robots), constructs
//! a MuSE graph with aMuSE, compares its network cost against the
//! centralized and single-sink baselines, and executes the plan on the
//! discrete-event simulator, verifying the distributed matches against a
//! centralized ground-truth evaluation.

use muse_core::algorithms::baselines::naive_single_node_cost;
use muse_core::graph::PlanContext;
use muse_core::prelude::*;
use muse_runtime::matcher::Evaluator;
use muse_runtime::sim::{run_simulation, SimConfig};
use muse_runtime::Deployment;
use muse_sim::traces::{generate_traces, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Describe the network: Γ = (N, f, r) ------------------------
    let mut catalog = Catalog::new();
    let c = catalog.add_event_type("C")?; // camera obstacle, frequent
    let l = catalog.add_event_type("L")?; // lidar obstacle, frequent
    let f = catalog.add_event_type("F")?; // floor clearance, rare

    let network = NetworkBuilder::new(3, 3)
        .node(NodeId(0), [c, f]) // robot R1
        .node(NodeId(1), [c, l]) // robot R2
        .node(NodeId(2), [l]) //    robot R3
        .rate(c, 20.0)
        .rate(l, 20.0)
        .rate(f, 1.0)
        .build();

    // --- 2. State the query: SEQ(AND(C, L), F) -------------------------
    // Obstacle reports correlate on a shared position key: equality
    // selectivity 0.1 (the trace generator draws keys from a domain of 10).
    let query = parse_query(
        "PATTERN SEQ(AND(C c1, L l1), F f1) \
         WHERE c1.key = l1.key {0.1} AND c1.key = f1.key {0.1} \
         WITHIN 5s",
        QueryId(0),
        &mut catalog,
        &ParserOptions::default(),
    )?;
    println!("query: {}", query.render(&catalog));

    // --- 3. Plan: aMuSE vs. the baselines ------------------------------
    let plan = amuse(&query, &network, &AMuseConfig::default())?;
    let central = centralized_cost(std::slice::from_ref(&query), &network);
    let (naive_node, naive) = naive_single_node_cost(std::slice::from_ref(&query), &network);
    let oop = optimal_operator_placement(&query, &network);
    println!("centralized cost:        {central:8.1}");
    println!("naive @ {naive_node:?} cost:       {naive:8.1}");
    println!("single-sink (oOP) cost:  {:8.1}", oop.cost);
    println!(
        "MuSE graph cost:         {:8.1}  ({} sinks, {} vertices)",
        plan.cost,
        plan.sinks.len(),
        plan.graph.num_vertices()
    );

    // --- 4. Execute the plan on the simulator --------------------------
    let events = generate_traces(
        &network,
        &TraceConfig {
            duration: 60.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.05,
            key_domain: 10,
            band_domain: 0,
            seed: 7,
        },
    );
    let ctx = PlanContext::new(std::slice::from_ref(&query), &network, &plan.table);
    plan.graph
        .check_correct(&ctx, 1_000_000)
        .expect("plan is correct");
    let deployment = Deployment::new(&plan.graph, &ctx);
    let report = run_simulation(&deployment, &events, &SimConfig::default());

    // --- 5. Verify against centralized ground truth --------------------
    let ground_truth = Evaluator::for_query(&query).run(&events);
    println!(
        "events: {}   transmitted: {}   (ratio {:.1}%)",
        report.metrics.events_injected,
        report.metrics.messages_sent,
        report.metrics.transmission_ratio() * 100.0
    );
    println!(
        "matches: distributed {} / centralized {}",
        report.matches[0].len(),
        ground_truth.len()
    );
    assert_eq!(report.matches[0].len(), ground_truth.len());
    println!("distributed evaluation matches the ground truth ✓");
    Ok(())
}
