//! The paper's case study (§7.3): cluster monitoring queries over a
//! Google-cluster-style task event trace, executed end-to-end.
//!
//! ```text
//! cargo run --release --example cluster_monitoring
//! ```
//!
//! Generates the synthetic 20-node cluster trace, estimates planning
//! statistics from it (per-window rates, empirical id-equality
//! selectivities), plans Listing 1's two queries with aMuSE and with
//! traditional single-sink operator placement, executes both plans on the
//! discrete-event simulator, and reports the Table-3-style transmission
//! ratios plus per-node load.

use muse_core::algorithms::baselines::{optimal_operator_placement, placement_to_graph};
use muse_core::graph::PlanContext;
use muse_core::prelude::*;
use muse_runtime::sim::{run_simulation, SimConfig};
use muse_runtime::Deployment;
use muse_sim::cluster_trace::{
    generate_cluster_trace, query1_source, query2_source, ClusterTraceConfig,
};
use muse_sim::stats_est::{rates_per_window, PairSelectivities};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The trace ----------------------------------------------------
    let config = ClusterTraceConfig {
        jobs: 300,
        ..Default::default()
    };
    let trace = generate_cluster_trace(&config);
    println!(
        "cluster trace: {} events over {} nodes ({} h)",
        trace.events.len(),
        trace.network.num_nodes(),
        config.duration_ms / 3_600_000
    );
    for ty in trace.catalog.event_types() {
        let count = trace.events.iter().filter(|e| e.ty == ty).count();
        println!("  {:9} {count:>6}", trace.catalog.event_type_name(ty));
    }

    // --- 2. Statistics for the planner ----------------------------------
    let window = 30 * 60 * 1000; // WITHIN 30min
    let attrs = [
        trace.catalog.attr("jID").unwrap(),
        trace.catalog.attr("uID").unwrap(),
    ];
    let selectivities =
        PairSelectivities::estimate(&trace.events, window, &attrs, config.duration_ms);
    let network = rates_per_window(&trace.network, &trace.events, window, config.duration_ms);

    // --- 3. The queries of Listing 1 -------------------------------------
    let mut workload = Workload::parse(
        trace.catalog.clone(),
        [query1_source(), query2_source()],
        &ParserOptions::default(),
    )?;
    for q in workload.queries_mut() {
        selectivities.apply_to_query(q);
    }
    for q in workload.queries() {
        println!("\n{:?}: {}", q.id(), q.render(&trace.catalog));
    }

    // --- 4. Plan: aMuSE (multi-sink) vs. oOP (single-sink) ---------------
    let plan = amuse_workload(&workload, &network, &AMuseConfig::default())?;
    let ctx = PlanContext::new(workload.queries(), &network, &plan.table);
    let muse_deployment = Deployment::new(&plan.merged, &ctx);

    let mut table = muse_core::projection::ProjectionTable::new();
    let mut oop_graph = muse_core::graph::MuseGraph::new();
    for q in workload.queries() {
        let placement = optimal_operator_placement(q, &network);
        oop_graph.union_with(&placement_to_graph(q, &placement, &network, &mut table)?);
    }
    let oop_ctx = PlanContext::new(workload.queries(), &network, &table);
    let oop_deployment = Deployment::new(&oop_graph, &oop_ctx);

    // --- 5. Execute both plans over the trace ----------------------------
    println!("\nexecuting both plans over the trace …");
    let ms = run_simulation(&muse_deployment, &trace.events, &SimConfig::default());
    let op = run_simulation(&oop_deployment, &trace.events, &SimConfig::default());
    let ms_matches: usize = ms.matches.iter().map(Vec::len).sum();
    let op_matches: usize = op.matches.iter().map(Vec::len).sum();
    assert_eq!(ms_matches, op_matches, "both plans find the same matches");

    println!("\n{:>24} | {:>10} | {:>10}", "", "MuSE (MS)", "oOP (OP)");
    println!(
        "{:>24} | {:>9.1}% | {:>9.1}%",
        "transmission ratio",
        ms.metrics.transmission_ratio() * 100.0,
        op.metrics.transmission_ratio() * 100.0
    );
    println!(
        "{:>24} | {:>10} | {:>10}",
        "messages sent", ms.metrics.messages_sent, op.metrics.messages_sent
    );
    println!(
        "{:>24} | {:>10} | {:>10}",
        "bytes sent", ms.metrics.bytes_sent, op.metrics.bytes_sent
    );
    println!(
        "{:>24} | {:>10} | {:>10}",
        "matches", ms_matches, op_matches
    );
    let busiest =
        |m: &muse_runtime::Metrics| m.per_node_processed.iter().copied().max().unwrap_or(0);
    println!(
        "{:>24} | {:>10} | {:>10}",
        "busiest-node load",
        busiest(&ms.metrics),
        busiest(&op.metrics)
    );
    println!("\nmulti-sink evaluation moves less data and spreads the load ✓");
    Ok(())
}
