//! Multi-query planning with projection reuse (§6.2 of the paper).
//!
//! ```text
//! cargo run --example multi_query_reuse
//! ```
//!
//! Two related queries share the sub-pattern `SEQ(A, B)`. Planned
//! sequentially with the multi-query extension, the second query reuses the
//! streams the first query already established, so its marginal cost drops
//! compared to planning it in isolation.

use muse_core::algorithms::amuse::amuse;
use muse_core::prelude::*;
use muse_core::query::CmpOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::with_anonymous_types(4);
    let t = |i: u16| EventTypeId(i);

    let network = NetworkBuilder::new(4, 4)
        .node(NodeId(0), [t(0), t(2)])
        .node(NodeId(1), [t(0), t(1)])
        .node(NodeId(2), [t(1), t(3)])
        .node(NodeId(3), [t(2), t(3)])
        .rate(t(0), 100.0)
        .rate(t(1), 80.0)
        .rate(t(2), 1.0)
        .rate(t(3), 2.0)
        .build();

    // q0 = SEQ(A, B, C), q1 = SEQ(A, B, D); both constrain A.key = B.key.
    let shared_pred = |sel: f64| {
        Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(1), AttrId(0)),
            sel,
        )
    };
    let workload = Workload::from_patterns(
        catalog,
        [
            (
                Pattern::seq([
                    Pattern::leaf(t(0)),
                    Pattern::leaf(t(1)),
                    Pattern::leaf(t(2)),
                ]),
                vec![shared_pred(0.01)],
                1_000,
            ),
            (
                Pattern::seq([
                    Pattern::leaf(t(0)),
                    Pattern::leaf(t(1)),
                    Pattern::leaf(t(3)),
                ]),
                vec![shared_pred(0.01)],
                1_000,
            ),
        ],
    )?;

    // Plan each query in isolation …
    let isolated: Vec<f64> = workload
        .queries()
        .iter()
        .map(|q| amuse(q, &network, &AMuseConfig::default()).map(|p| p.cost))
        .collect::<Result<_, _>>()?;
    println!(
        "isolated costs:  q0 = {:.2}, q1 = {:.2}",
        isolated[0], isolated[1]
    );
    println!("isolated total:  {:.2}", isolated.iter().sum::<f64>());

    // … and jointly, with reuse of already-established streams.
    let plan = amuse_workload(&workload, &network, &AMuseConfig::default())?;
    println!(
        "joint marginals: q0 = {:.2}, q1 = {:.2}",
        plan.per_query_cost[0], plan.per_query_cost[1]
    );
    println!("joint total:     {:.2}", plan.total_cost);
    let saved = isolated.iter().sum::<f64>() - plan.total_cost;
    println!(
        "reuse saves {saved:.2} ({:.0}% of the second query's standalone cost)",
        100.0 * (isolated[1] - plan.per_query_cost[1]) / isolated[1].max(f64::MIN_POSITIVE)
    );
    assert!(plan.total_cost <= isolated.iter().sum::<f64>() + 1e-9);

    println!(
        "\nmerged deployment: {} vertices, {} edges across {} queries",
        plan.merged.num_vertices(),
        plan.merged.num_edges(),
        workload.len()
    );
    Ok(())
}
