//! # muse
//!
//! Umbrella crate for the MuSE graphs reproduction: re-exports the model and
//! algorithms (`muse-core`), the distributed CEP execution engine
//! (`muse-runtime`), and the synthetic workload generators (`muse-sim`).
//!
//! See the repository README for an architecture overview, `examples/` for
//! runnable scenarios, and `crates/muse-bench` for the experiment harness
//! regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use muse_core as core;
pub use muse_runtime as runtime;
pub use muse_sim as sim;
pub use muse_verify as verify;

/// Commonly used items across the crates.
pub mod prelude {
    pub use muse_core::prelude::*;
    pub use muse_verify::{verify_for_deploy, verify_plan, Report, Severity, VerifyConfig};
}
